#include "sim/cpu/core.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mcversi::sim {

Core::Core(Pid pid, const SystemConfig &cfg, EventQueue &eq, L1Cache *l1,
           Rng rng)
    : pid_(pid), cfg_(cfg), eq_(eq), l1_(l1), rng_(rng),
      sq_(static_cast<std::size_t>(cfg.sqSize))
{
    CoreHooks hooks;
    hooks.respond = [this](const CacheResp &r) { onCacheResp(r); };
    hooks.addressInvalidated = [this](Addr line) {
        onAddressInvalidated(line);
    };
    l1_->setHooks(std::move(hooks));
}

void
Core::loadProgram(Program program)
{
    program_ = std::move(program);
}

void
Core::evPump(void *o, std::uint64_t, std::uint64_t, std::uint64_t,
             std::uint64_t)
{
    static_cast<Core *>(o)->pump();
}

void
Core::evPumpClearFlag(void *o, std::uint64_t, std::uint64_t,
                      std::uint64_t, std::uint64_t)
{
    auto *self = static_cast<Core *>(o);
    self->pumpScheduled_ = false;
    self->pump();
}

void
Core::evTryIssueLoad(void *o, std::uint64_t slot, std::uint64_t,
                     std::uint64_t, std::uint64_t)
{
    static_cast<Core *>(o)->tryIssueLoad(
        static_cast<std::size_t>(slot));
}

void
Core::evDone(void *o, std::uint64_t, std::uint64_t, std::uint64_t,
             std::uint64_t)
{
    auto *self = static_cast<Core *>(o);
    self->doneCallback_(self->pid_);
}

void
Core::start(Tick start_tick)
{
    const std::size_t n = program_.instrs.size();
    dyn_.assign(n, DynInstr{});
    // Precompute LoadAddrDep dependencies: nearest preceding
    // value-producing instruction (load or RMW).
    int last_value_producer = -1;
    for (std::size_t i = 0; i < n; ++i) {
        const InstrKind k = program_.instrs[i].kind;
        if (k == InstrKind::LoadAddrDep)
            dyn_[i].depSlot = last_value_producer;
        if (k == InstrKind::Load || k == InstrKind::LoadAddrDep ||
            k == InstrKind::Rmw) {
            last_value_producer = static_cast<int>(i);
        }
    }
    fetchPtr_ = 0;
    retirePtr_ = 0;
    sq_.clear();
    storeInFlight_ = false;
    loadReqs_.clear();
    rmwReqs_.clear();
    flushReqs_.clear();
    done_ = (n == 0);
    pumpScheduled_ = false;
    if (!done_) {
        eq_.scheduleFn(start_tick, &Core::evPump, this);
    } else if (doneCallback_) {
        eq_.scheduleFn(start_tick, &Core::evDone, this);
    }
}

bool
Core::isLoad(std::size_t slot) const
{
    const InstrKind k = program_.instrs[slot].kind;
    return k == InstrKind::Load || k == InstrKind::LoadAddrDep;
}

void
Core::schedulePump(Tick delta)
{
    if (pumpScheduled_)
        return;
    pumpScheduled_ = true;
    eq_.scheduleFnIn(delta, &Core::evPumpClearFlag, this);
}

void
Core::pump()
{
    if (done_)
        return;
    fetch();
    retireLoop();
    tryDrainStore();
    if (retirePtr_ == program_.instrs.size() && sq_.drained() &&
        !storeInFlight_ && !done_) {
        done_ = true;
        if (doneCallback_)
            doneCallback_(pid_);
    }
}

void
Core::fetch()
{
    const std::size_t n = program_.instrs.size();
    while (fetchPtr_ < n &&
           fetchPtr_ - retirePtr_ <
               static_cast<std::size_t>(cfg_.robSize)) {
        const std::size_t slot = fetchPtr_;
        const ProgInstr &pi = program_.instrs[slot];
        DynInstr &d = dyn_[slot];
        switch (pi.kind) {
          case InstrKind::Load:
          case InstrKind::LoadAddrDep: {
            if (loadReqs_.size() >=
                static_cast<std::size_t>(cfg_.lqSize)) {
                return; // LQ full: stall fetch.
            }
            const Tick ready = 1 + rng_.below(cfg_.issueJitter + 1);
            eq_.scheduleFnIn(ready, &Core::evTryIssueLoad, this, slot);
            break;
          }
          case InstrKind::Store:
            if (sq_.full())
                return; // SQ full: stall fetch.
            d.value = valueSource_();
            d.addr = pi.addr;
            sq_.push(slot, pi.addr, d.value);
            break;
          case InstrKind::Rmw:
            d.value = valueSource_();
            d.addr = pi.addr;
            break;
          case InstrKind::Flush:
          case InstrKind::Delay:
            d.addr = pi.addr;
            break;
        }
        ++fetchPtr_;
    }
}

void
Core::tryIssueLoad(std::size_t slot)
{
    if (done_ || slot < retirePtr_)
        return;
    DynInstr &d = dyn_[slot];
    if (d.st != LoadState::Waiting)
        return;
    const ProgInstr &pi = program_.instrs[slot];

    // Resolve the address.
    if (pi.kind == InstrKind::LoadAddrDep && d.depSlot >= 0) {
        const DynInstr &dep = dyn_[static_cast<std::size_t>(d.depSlot)];
        if (dep.st != LoadState::Performed &&
            dep.st != LoadState::Done) {
            return; // Re-scheduled when the dependency performs.
        }
        const WriteVal dep_val =
            program_.instrs[static_cast<std::size_t>(d.depSlot)].kind ==
                    InstrKind::Rmw
                ? dep.rmwOld
                : dep.value;
        d.addr = program_.depAddr(pi, dep_val);
    } else {
        d.addr = pi.addr;
    }
    d.addrValid = true;

    // Store-to-load forwarding (TSO internal read-from).
    if (auto fwd = sq_.forward(d.addr, slot)) {
        ++forwards_;
        markPerformed(slot, *fwd, false);
        return;
    }
    d.st = LoadState::Issued;
    const ReqId id = nextReq_++;
    loadReqs_[id] = slot;
    l1_->coreLoad(id, d.addr);
}

void
Core::markPerformed(std::size_t slot, WriteVal value, bool flagged)
{
    DynInstr &d = dyn_[slot];
    d.st = LoadState::Performed;
    d.value = value;
    ++loads_;

    if (flagged) {
        // Data consumed from an invalidated-in-flight line (IS_I): the
        // value is stale as of the sunk invalidation, so the load must
        // replay unconditionally -- even at the head, since an older
        // load may already have retired with a newer observation. This
        // differs from onAddressInvalidated(): a plain Inv is delivered
        // before the competing write becomes visible, which is what
        // makes the oldest-load exception safe there.
        // (BUG MESI,LQ+IS,Inv prevents the flag from ever being set;
        // BUG LQ+no-TSO ignores it here.)
        if (cfg_.bug != BugId::LqNoTso) {
            squashLoad(slot);
            schedulePump();
            return;
        }
    }

    wakeDependents(slot);
    schedulePump();
}

void
Core::wakeDependents(std::size_t slot)
{
    for (std::size_t i = slot + 1; i < fetchPtr_; ++i) {
        if (dyn_[i].depSlot == static_cast<int>(slot) &&
            dyn_[i].st == LoadState::Waiting) {
            eq_.scheduleFnIn(1, &Core::evTryIssueLoad, this, i);
        }
    }
}

void
Core::squashFrom(std::size_t start)
{
    for (std::size_t i = std::max(start, retirePtr_); i < fetchPtr_;
         ++i) {
        if (!isLoad(i))
            continue;
        DynInstr &d = dyn_[i];
        if (d.st == LoadState::Performed) {
            d.st = LoadState::Waiting;
            d.addrValid = false;
            ++squashes_;
            eq_.scheduleFnIn(2, &Core::evTryIssueLoad, this, i);
        } else if (d.st == LoadState::Issued) {
            d.squashPending = true; // Re-issue when the response lands.
        }
    }
}

void
Core::squashLoad(std::size_t slot)
{
    // Targeted squash: this load plus (transitively) address-dependent
    // loads, whose effective address derives from the replayed value.
    // Unlike a full younger-than squash, unrelated performed loads
    // keep their values: each is protected independently by its own
    // line's invalidation/eviction/in-flight notifications, so the
    // broad cascade is redundant and would mask exactly the windows
    // the §5.3 bugs live in.
    DynInstr &d = dyn_[slot];
    if (d.st == LoadState::Performed) {
        d.st = LoadState::Waiting;
        d.addrValid = false;
        ++squashes_;
        const Tick backoff =
            Tick{2} << std::min<std::uint8_t>(d.replays, 8);
        if (d.replays < 255)
            ++d.replays;
        eq_.scheduleFnIn(backoff, &Core::evTryIssueLoad, this, slot);
    } else if (d.st == LoadState::Issued) {
        d.squashPending = true;
    } else {
        return;
    }
    for (std::size_t j = slot + 1; j < fetchPtr_; ++j) {
        if (dyn_[j].depSlot == static_cast<int>(slot))
            squashLoad(j);
    }
}

void
Core::onAddressInvalidated(Addr line)
{
    // BUG LQ+no-TSO: the LQ ignores forwarded invalidations.
    if (cfg_.bug == BugId::LqNoTso)
        return;
    if (done_)
        return;
    for (std::size_t i = retirePtr_; i < fetchPtr_; ++i) {
        if (!isLoad(i))
            continue;
        DynInstr &d = dyn_[i];
        if (!d.addrValid || lineAddr(d.addr) != line)
            continue;
        if (d.st == LoadState::Issued) {
            // The response in flight may carry a value captured before
            // this invalidation (e.g. an L1 hit read the array before
            // the line was invalidated): replay when it lands. Real LQs
            // squash by address match on any outstanding load.
            d.squashPending = true;
            continue;
        }
        if (d.st != LoadState::Performed)
            continue;
        if (i == retirePtr_) {
            // The oldest unretired instruction has logically performed;
            // its value stands (standard LQ rule; safe because
            // invalidations are delivered before the competing write
            // becomes visible).
            continue;
        }
        squashLoad(i);
    }
    schedulePump();
}

void
Core::onCacheResp(const CacheResp &resp)
{
    if (auto it = loadReqs_.find(resp.id); it != loadReqs_.end()) {
        const std::size_t slot = it->second;
        loadReqs_.erase(it);
        if (done_ || slot < retirePtr_)
            return;
        DynInstr &d = dyn_[slot];
        if (d.squashPending) {
            d.squashPending = false;
            d.st = LoadState::Waiting;
            d.addrValid = false;
            const Tick backoff =
                Tick{2} << std::min<std::uint8_t>(d.replays, 8);
            if (d.replays < 255)
                ++d.replays;
            eq_.scheduleFnIn(backoff, &Core::evTryIssueLoad, this,
                             slot);
            return;
        }
        markPerformed(slot, resp.value, resp.invalidatedInFlight);
        return;
    }
    if (auto it = rmwReqs_.find(resp.id); it != rmwReqs_.end()) {
        const std::size_t slot = it->second;
        rmwReqs_.erase(it);
        DynInstr &d = dyn_[slot];
        d.rmwOld = resp.value;
        d.st = LoadState::Performed;
        wakeDependents(slot); // Address-dependent loads may wait on us.
        schedulePump();
        return;
    }
    if (auto it = flushReqs_.find(resp.id); it != flushReqs_.end()) {
        const std::size_t slot = it->second;
        flushReqs_.erase(it);
        dyn_[slot].st = LoadState::Performed;
        schedulePump();
        return;
    }
    if (resp.id == storeReq_ && storeInFlight_) {
        const std::size_t slot = storeInFlightSlot_;
        const DynInstr &d = dyn_[slot];
        // The store serialized: record its write event now, with the
        // value it overwrote.
        if (witness_) {
            witness_->recordWrite(pid_, static_cast<std::int32_t>(slot),
                                  d.addr, d.value, resp.overwritten);
        }
        ++stores_;
        sq_.pop(slot);
        storeInFlight_ = false;
        schedulePump();
        return;
    }
}

void
Core::tryDrainStore()
{
    if (storeInFlight_)
        return;
    StoreQueue::Entry *entry =
        sq_.drainCandidate(cfg_.bug != BugId::SqNoFifo, rng_);
    if (!entry)
        return;
    entry->inFlight = true;
    storeInFlight_ = true;
    storeInFlightSlot_ = entry->slot;
    storeReq_ = nextReq_++;
    l1_->coreStore(storeReq_, entry->addr, entry->value);
}

void
Core::retireLoop()
{
    const std::size_t n = program_.instrs.size();
    while (retirePtr_ < std::min(fetchPtr_, n)) {
        const std::size_t slot = retirePtr_;
        const ProgInstr &pi = program_.instrs[slot];
        DynInstr &d = dyn_[slot];
        switch (pi.kind) {
          case InstrKind::Load:
          case InstrKind::LoadAddrDep:
            if (d.st != LoadState::Performed)
                return;
            if (witness_) {
                witness_->recordRead(pid_,
                                     static_cast<std::int32_t>(slot),
                                     d.addr, d.value);
            }
            d.st = LoadState::Done;
            ++retirePtr_;
            continue;

          case InstrKind::Store:
            // Already dispatched into the SQ; retirement makes it
            // drain-eligible.
            sq_.retire(slot);
            ++retirePtr_;
            tryDrainStore();
            continue;

          case InstrKind::Rmw:
            if (d.st == LoadState::Performed) {
                if (witness_) {
                    witness_->recordRead(
                        pid_, static_cast<std::int32_t>(slot), d.addr,
                        d.rmwOld, /*rmw=*/true);
                    witness_->recordWrite(
                        pid_, static_cast<std::int32_t>(slot), d.addr,
                        d.value, d.rmwOld, /*rmw=*/true);
                }
                d.st = LoadState::Done;
                ++retirePtr_;
                // Full fence: younger speculative loads replay.
                squashFrom(retirePtr_);
                continue;
            }
            if (!d.issued) {
                // Issue when oldest and all older stores have drained
                // (younger stores dispatched into the SQ cannot retire
                // past this RMW, so only retired entries matter).
                if (sq_.hasRetiredEntries() || storeInFlight_)
                    return;
                d.issued = true;
                const ReqId id = nextReq_++;
                rmwReqs_[id] = slot;
                l1_->coreRmw(id, d.addr, d.value);
            }
            return;

          case InstrKind::Flush:
            if (d.st == LoadState::Performed) {
                d.st = LoadState::Done;
                ++retirePtr_;
                continue;
            }
            if (!d.issued) {
                d.issued = true;
                const ReqId id = nextReq_++;
                flushReqs_[id] = slot;
                l1_->coreFlush(id, d.addr);
            }
            return;

          case InstrKind::Delay:
            if (!d.delayArmed) {
                d.delayArmed = true;
                d.delayEnd = eq_.now() + pi.delay;
                schedulePump(pi.delay);
                return;
            }
            if (eq_.now() < d.delayEnd)
                return;
            ++retirePtr_;
            continue;
        }
    }
}

} // namespace mcversi::sim

namespace mcversi::sim {
std::string
Core::debugState() const
{
    std::ostringstream os;
    os << "core" << pid_ << ": retire=" << retirePtr_ << "/"
       << program_.instrs.size() << " fetch=" << fetchPtr_
       << " sq=" << sq_.size() << " ldReqs=" << loadReqs_.size()
       << " stInFlight=" << storeInFlight_ << " done=" << done_;
    if (retirePtr_ < fetchPtr_ && retirePtr_ < program_.instrs.size()) {
        os << " head.kind=" << static_cast<int>(
            program_.instrs[retirePtr_].kind)
           << " head.st=" << static_cast<int>(dyn_[retirePtr_].st)
           << " head.addr=0x" << std::hex
           << dyn_[retirePtr_].addr << std::dec;
    }
    return os.str();
}
} // namespace mcversi::sim
