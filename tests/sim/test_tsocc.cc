/**
 * @file
 * White-box tests for the TSO-CC-style lazy protocol.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "sim/network.hh"
#include "sim/tsocc/tsocc_l1.hh"
#include "sim/tsocc/tsocc_l2.hh"

using namespace mcversi::sim;
using mcversi::Addr;
using mcversi::kLineBytes;
using mcversi::Pid;
using mcversi::Rng;

namespace {

constexpr Addr kLineA = 0;
constexpr Addr kLineB = 8 * kLineBytes;
constexpr Addr kLineC = 16 * kLineBytes;

struct CoreStub
{
    std::vector<CacheResp> resps;
    std::vector<Addr> invs;
};

struct TsoccFixture
{
    SystemConfig cfg;
    EventQueue eq;
    Network net{eq, Rng(8)};
    MainMemory mem{eq, net, Rng(9)};
    TransitionCoverage cov;
    std::vector<std::unique_ptr<TsoccL2>> l2s;
    std::vector<std::unique_ptr<TsoccL1>> l1s;
    std::vector<CoreStub> stubs;

    explicit TsoccFixture(BugId bug = BugId::None, int cores = 2)
    {
        cfg.numCores = cores;
        cfg.protocol = Protocol::Tsocc;
        cfg.bug = bug;
        cfg.tsoccMaxAccesses = 4;
        cfg.tsoccGroupSize = 2;
        cfg.tsoccMaxTs = 6;
        net.registerNode(kMemNode, &mem);
        for (int t = 0; t < cfg.numL2Tiles(); ++t) {
            l2s.push_back(std::make_unique<TsoccL2>(
                t, cfg, eq, net, cov, Rng(100 + t)));
            net.registerNode(l2Node(t), l2s.back().get());
        }
        stubs.resize(static_cast<std::size_t>(cores));
        for (Pid p = 0; p < cores; ++p) {
            l1s.push_back(std::make_unique<TsoccL1>(
                p, cfg, eq, net, cov, Rng(200 + p)));
            net.registerNode(coreNode(p), l1s.back().get());
            CoreHooks hooks;
            CoreStub *stub = &stubs[static_cast<std::size_t>(p)];
            hooks.respond = [stub](const CacheResp &r) {
                stub->resps.push_back(r);
            };
            hooks.addressInvalidated = [stub](Addr line) {
                stub->invs.push_back(line);
            };
            l1s.back()->setHooks(std::move(hooks));
        }
    }

    void run() { eq.runUntilQuiescent(); }

    const CacheResp &
    lastResp(Pid p)
    {
        return stubs[static_cast<std::size_t>(p)].resps.back();
    }

    bool
    gotInv(Pid p, Addr line)
    {
        const auto &v = stubs[static_cast<std::size_t>(p)].invs;
        return std::find(v.begin(), v.end(), line) != v.end();
    }
};

} // namespace

TEST(TsoccProtocol, ColdLoadInstallsShared)
{
    TsoccFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 0u);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StS);
    EXPECT_EQ(f.l2s[0]->lineState(kLineA), TsoccL2::StU);
}

TEST(TsoccProtocol, StoreObtainsOwnership)
{
    TsoccFixture f;
    f.l1s[0]->coreStore(1, kLineA, 5);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StM);
    EXPECT_EQ(f.l2s[0]->lineState(kLineA), TsoccL2::StO);
}

TEST(TsoccProtocol, RemoteReadRecallsFromOwner)
{
    TsoccFixture f;
    f.l1s[0]->coreStore(1, kLineA, 5);
    f.run();
    f.l1s[1]->coreLoad(2, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(1).value, 5u);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StI)
        << "owner is recalled and invalidated";
    EXPECT_TRUE(f.gotInv(0, kLineA));
}

TEST(TsoccProtocol, SharersAreNotInvalidatedOnWrite)
{
    // The lazy part: a write does NOT invalidate stale shared copies.
    TsoccFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.l1s[1]->coreStore(2, kLineA, 9);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StS)
        << "SWMR is explicitly violated for reads";
    EXPECT_FALSE(f.gotInv(0, kLineA));
}

TEST(TsoccProtocol, MaxAccessesForcesRevalidation)
{
    TsoccFixture f;
    // The fill itself consumes one access (maxAccesses = 4 =>
    // 3 further hits).
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    for (int i = 0; i < 3; ++i) {
        f.l1s[0]->coreLoad(static_cast<ReqId>(10 + i), kLineA);
        f.run();
    }
    // Next load must miss (expiry), notifying the LQ.
    f.stubs[0].invs.clear();
    f.l1s[0]->coreLoad(20, kLineA);
    f.run();
    EXPECT_TRUE(f.gotInv(0, kLineA)) << "expiry must notify the LQ";
    EXPECT_EQ(f.lastResp(0).value, 0u);
}

TEST(TsoccProtocol, StaleReadBoundedByMaxAccesses)
{
    TsoccFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.l1s[1]->coreStore(2, kLineA, 9);
    f.run();
    // Stale reads allowed up to the access budget...
    f.l1s[0]->coreLoad(3, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 0u) << "bounded staleness";
    // ...but after expiry the new value must be observed.
    for (int i = 0; i < 5; ++i) {
        f.l1s[0]->coreLoad(static_cast<ReqId>(10 + i), kLineA);
        f.run();
    }
    EXPECT_EQ(f.lastResp(0).value, 9u);
}

TEST(TsoccProtocol, SelfInvalidationOnNewTimestamp)
{
    TsoccFixture f;
    // Core 0 holds a stale shared copy of A.
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    // Core 1 writes A (now stale at core 0) and writes B.
    f.l1s[1]->coreStore(2, kLineA, 9);
    f.run();
    f.l1s[1]->coreStore(3, kLineB, 8);
    f.run();
    // Core 0 reads B: the fill carries core 1's timestamp, which is
    // newer than anything seen => all shared lines self-invalidate.
    f.stubs[0].invs.clear();
    f.l1s[0]->coreLoad(4, kLineB);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 8u);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StI)
        << "stale A must be self-invalidated";
    EXPECT_TRUE(f.gotInv(0, kLineA));
    EXPECT_GT(f.l1s[0]->selfInvalidations(), 0u);
    // A re-read now sees the new value: TSO preserved.
    f.l1s[0]->coreLoad(5, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 9u);
}

TEST(TsoccProtocol, CompareBugMissesEqualTimestamp)
{
    // Two writes in the same timestamp group (groupSize = 2) have equal
    // timestamps. Reading the first then the second must still
    // self-invalidate ('larger or equal'); the compare bug ('larger')
    // misses it.
    auto run_case = [](BugId bug) {
        TsoccFixture f(bug);
        // Core 0 holds stale shared A.
        f.l1s[0]->coreLoad(1, kLineA);
        f.run();
        // Core 1: writes A then B in one timestamp group, then C in...
        f.l1s[1]->coreStore(2, kLineA, 9); // ts t, group slot 1
        f.run();
        f.l1s[1]->coreStore(3, kLineB, 8); // ts t, group slot 2
        f.run();
        // Core 0 reads B first (sets lastSeen[c1] = t)...
        f.l1s[0]->coreLoad(4, kLineB);
        f.run();
        // A self-invalidated here already (first observation). Refetch
        // a *stale-able* copy: core 1 re-writes A in the SAME group? The
        // group advanced; instead reconstruct: core 0 re-reads A (fresh,
        // value 9), then core 1 writes C at the same ts as some line
        // core 0 still holds... Simplify: check the observable rule
        // directly -- after reading B (ts t), reading A (also ts t)
        // must self-invalidate other shared lines under >=, not
        // under >.
        f.l1s[0]->coreLoad(5, kLineC); // some unrelated shared line
        f.run();
        f.stubs[0].invs.clear();
        f.l1s[0]->coreLoad(6, kLineA); // meta ts == lastSeen
        f.run();
        return f.gotInv(0, kLineC);
    };
    EXPECT_TRUE(run_case(BugId::None))
        << "'>=' must self-invalidate on the equal case";
    EXPECT_FALSE(run_case(BugId::TsoccCompare))
        << "'>' must miss the equal case";
}

TEST(TsoccProtocol, TimestampResetBroadcastsEpoch)
{
    TsoccFixture f;
    // groupSize=2, maxTs=6: 14 stores roll the timestamp over.
    for (int i = 0; i < 14; ++i) {
        f.l1s[1]->coreStore(static_cast<ReqId>(i + 1),
                            kLineA + (i % 2) * 8,
                            static_cast<mcversi::WriteVal>(i + 1));
        f.run();
    }
    EXPECT_GT(f.l1s[1]->currentEpoch(), 0u) << "timestamp must reset";
    // The other core learned the new epoch via broadcast.
    EXPECT_EQ(f.l1s[0]->lastSeen(1).epoch, f.l1s[1]->currentEpoch());
}

TEST(TsoccProtocol, NoEpochBugSkipsBroadcast)
{
    TsoccFixture f(BugId::TsoccNoEpochIds);
    for (int i = 0; i < 14; ++i) {
        f.l1s[1]->coreStore(static_cast<ReqId>(i + 1), kLineA,
                            static_cast<mcversi::WriteVal>(i + 1));
        f.run();
    }
    EXPECT_GT(f.l1s[1]->currentEpoch(), 0u);
    EXPECT_FALSE(f.l1s[0]->lastSeen(1).valid)
        << "no broadcast, no observation: table never updated";
}

TEST(TsoccProtocol, RmwAtomicOnOwnedLine)
{
    TsoccFixture f;
    f.l1s[0]->coreStore(1, kLineA, 5);
    f.run();
    f.l1s[0]->coreRmw(2, kLineA, 6);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 5u);
    EXPECT_EQ(f.lastResp(0).overwritten, 5u);
}

TEST(TsoccProtocol, OwnerWritebackKeepsDataAtL2)
{
    TsoccFixture f;
    f.l1s[0]->coreStore(1, kLineA, 5);
    f.run();
    f.l1s[0]->coreFlush(2, kLineA);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StI);
    f.l1s[1]->coreLoad(3, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(1).value, 5u);
}

TEST(TsoccProtocol, NeverWrittenFetchDoesNotSweep)
{
    // A never-written line carries no metadata; reading only the
    // initial value imposes no ordering, so no self-invalidation.
    TsoccFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.stubs[0].invs.clear();
    f.l1s[0]->coreLoad(2, kLineB); // cold, never written
    f.run();
    EXPECT_FALSE(f.gotInv(0, kLineA));
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StS);
}

TEST(TsoccProtocol, MetadataSurvivesL2EvictionViaDirectoryStore)
{
    // The L2 persists per-line timestamp metadata across evictions (as
    // the TSO-CC paper's directory does), so a memory fetch of a
    // previously-written line still carries the writer's timestamp and
    // the self-invalidation rule keeps working.
    TsoccFixture f;
    // Core 0 holds a stale shared copy of A.
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    // Core 1 writes A, then writes B; flush both through the L2 so
    // the data goes to memory, then force B's L2 entry out by filling
    // its set (simplest: resetProtocol-free path -- directly evict via
    // many conflicting lines homed at the same tile/set).
    f.l1s[1]->coreStore(2, kLineA, 9);
    f.run();
    f.l1s[1]->coreStore(3, kLineB, 8);
    f.run();
    f.l1s[1]->coreFlush(4, kLineB);
    f.run();
    // Fill tile 1's set with conflicting lines to evict B from the L2
    // (B is at tile (kLineB/64)%8 = 0; set stride = 8*512*64 bytes).
    const Addr l2_set_stride = 8 * 512 * kLineBytes;
    for (int i = 1; i <= 5; ++i) {
        f.l1s[1]->coreLoad(static_cast<ReqId>(10 + i),
                           kLineB + static_cast<Addr>(i) * l2_set_stride);
        f.run();
    }
    // Core 0 reads B: even though B went through memory, metadata
    // survives and core 1's timestamp triggers self-invalidation of
    // the stale A copy.
    f.stubs[0].invs.clear();
    f.l1s[0]->coreLoad(20, kLineB);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 8u);
    EXPECT_TRUE(f.gotInv(0, kLineA))
        << "metadata must survive eviction so the rule still fires";
}

TEST(TsoccProtocol, RmwFenceSelfInvalidatesSharedLines)
{
    // An atomic RMW is a full fence: all Shared lines self-invalidate
    // so no stale copy can be read after the fence (the SB+fences
    // guarantee).
    TsoccFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StS);
    f.stubs[0].invs.clear();
    f.l1s[0]->coreRmw(2, kLineB, 77);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), TsoccL1::StI)
        << "fence must drop shared lines";
    EXPECT_TRUE(f.gotInv(0, kLineA));
}
