/**
 * @file
 * Figure 1 companion: the message-passing example.
 *
 * The paper's Figure 1 motivates MCM testing with the MP litmus test:
 * under TSO the outcome r1 = 1 /\ r2 = 0 is forbidden. This bench runs
 * MP on (a) the correct MESI system and (b) systems with each of the
 * read-reordering bugs, and reports how often each outcome class is
 * observed -- demonstrating that the forbidden outcome appears exactly
 * when a bug is injected.
 */

#include "bench_common.hh"

using namespace mcvbench;

namespace {

struct Outcomes
{
    std::uint64_t iterations = 0;
    std::uint64_t forbidden = 0;
    bool protocolError = false;
};

Outcomes
runMp(sim::BugId bug, std::uint64_t runs)
{
    litmus::LitmusRunner::Params params;
    params.system.bug = bug;
    params.system.seed = 123;
    params.iterationsPerRun = 10;
    params.instances = 24;
    litmus::LitmusRunner runner(params, {litmus::messagePassing()});

    Outcomes out;
    // Count forbidden observations over many independent short runs
    // (the runner stops at the first hit, so re-run).
    for (std::uint64_t i = 0; i < runs; ++i) {
        host::Budget budget;
        budget.maxTestRuns = 1;
        host::HarnessResult result = runner.run(budget);
        ++out.iterations;
        if (result.bugFound)
            ++out.forbidden;
    }
    return out;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const auto runs = static_cast<std::uint64_t>(60 * scale);

    std::printf("Figure 1: message passing (MP) -- forbidden outcome "
                "r1=1 /\\ r2=0 under TSO\n");
    std::printf("%llu test-runs of %s per system\n\n",
                static_cast<unsigned long long>(runs),
                litmus::messagePassing().name.c_str());
    std::printf("%-24s | %-12s | %s\n", "System", "forbidden",
                "observed rate");

    const sim::BugId cases[] = {
        sim::BugId::None,
        sim::BugId::LqNoTso,
        sim::BugId::MesiLqIsInv,
        sim::BugId::MesiLqSmInv,
        sim::BugId::SqNoFifo,
    };
    for (sim::BugId bug : cases) {
        const Outcomes out = runMp(bug, runs);
        std::printf("%-24s | %8llu/%-3llu | %.1f%%\n",
                    sim::bugInfo(bug).name,
                    static_cast<unsigned long long>(out.forbidden),
                    static_cast<unsigned long long>(out.iterations),
                    100.0 * static_cast<double>(out.forbidden) /
                        static_cast<double>(out.iterations));
    }
    std::printf(
        "\nExpectation: 0%% on the correct system; ~100%% under "
        "SQ+no-FIFO (write pair drains out of order).\n"
        "The LQ-side bugs need precise invalidation timing that a "
        "fixed MP rarely hits at\nthis budget -- exactly why "
        "diy-litmus is a weak detector for them (Table 4: NF).\n");
    return 0;
}
