/**
 * @file
 * Witness-signature contract (signature.hh).
 *
 * Completeness (the direction collective checking relies on): two
 * witnesses of the same checking equivalence class -- same per-thread
 * shape, same rf/co structure -- hash to the same signature even when
 * event ids, record order, raw addresses, write values, or init-event
 * interning order differ. Distinctness (best-effort, but what makes
 * the cache useful): perturbing any hashed dimension -- rf source, co
 * order, event type, rmw pairing, thread split, address equality
 * classes -- changes the signature.
 */

#include <gtest/gtest.h>

#include "memconsistency/signature.hh"

using namespace mcversi;

namespace {

mc::WitnessSignature
sigOf(mc::ExecWitness &ew)
{
    ew.finalize();
    EXPECT_EQ(ew.anomaly(), mc::WitnessAnomaly::None);
    mc::SignatureBuilder builder;
    return builder.compute(ew);
}

} // namespace

TEST(WitnessSignature, RecordOrderInvariance)
{
    // Message passing, recorded producer-first...
    mc::ExecWitness a;
    a.recordWrite(0, 0, 0x100, 1, kInitVal);
    a.recordWrite(0, 1, 0x140, 2, kInitVal);
    a.recordRead(1, 0, 0x140, 2);
    a.recordRead(1, 1, 0x100, 1);

    // ...consumer-first...
    mc::ExecWitness b;
    b.recordRead(1, 0, 0x140, 2);
    b.recordRead(1, 1, 0x100, 1);
    b.recordWrite(0, 0, 0x100, 1, kInitVal);
    b.recordWrite(0, 1, 0x140, 2, kInitVal);

    // ...and fully interleaved, with per-thread poi order reversed.
    mc::ExecWitness c;
    c.recordRead(1, 1, 0x100, 1);
    c.recordWrite(0, 1, 0x140, 2, kInitVal);
    c.recordRead(1, 0, 0x140, 2);
    c.recordWrite(0, 0, 0x100, 1, kInitVal);

    const mc::WitnessSignature sa = sigOf(a);
    EXPECT_EQ(sa, sigOf(b));
    EXPECT_EQ(sa, sigOf(c));
}

TEST(WitnessSignature, AddressRenamingInvariance)
{
    auto build = [](Addr x, Addr y) {
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, x, 1, kInitVal);
        ew.recordWrite(0, 1, y, 2, kInitVal);
        ew.recordRead(1, 0, y, 2);
        ew.recordRead(1, 1, x, 1);
        return ew;
    };
    mc::ExecWitness a = build(0x100, 0x140);
    mc::ExecWitness b = build(0x9000, 0x40);
    EXPECT_EQ(sigOf(a), sigOf(b));

    // Collapsing the two addresses into one changes the equality
    // classes (and the conflict orders), hence the signature.
    mc::ExecWitness c;
    c.recordWrite(0, 0, 0x100, 1, kInitVal);
    c.recordWrite(0, 1, 0x100, 2, 1);
    c.recordRead(1, 0, 0x100, 2);
    c.recordRead(1, 1, 0x100, 2);
    EXPECT_NE(sigOf(a), sigOf(c));
}

TEST(WitnessSignature, ValueRenamingInvariance)
{
    auto build = [](WriteVal v1, WriteVal v2) {
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x100, v1, kInitVal);
        ew.recordWrite(1, 0, 0x100, v2, v1);
        ew.recordRead(2, 0, 0x100, v2);
        return ew;
    };
    mc::ExecWitness a = build(1, 2);
    mc::ExecWitness b = build(7777, 31);
    EXPECT_EQ(sigOf(a), sigOf(b));
}

TEST(WitnessSignature, InitEventInterningOrderInvariance)
{
    // The init event of 0x100 is interned at a different moment in the
    // two record orders (before vs after the witness has seen other
    // events), so its raw EventId differs; the canonical name is
    // assigned by first *reference* in the rf/co pass and must agree.
    mc::ExecWitness a;
    a.recordRead(0, 0, 0x100, kInitVal);
    a.recordWrite(1, 0, 0x140, 5, kInitVal);
    a.recordRead(1, 1, 0x100, kInitVal);

    mc::ExecWitness b;
    b.recordWrite(1, 0, 0x140, 5, kInitVal);
    b.recordRead(1, 1, 0x100, kInitVal);
    b.recordRead(0, 0, 0x100, kInitVal);

    EXPECT_EQ(sigOf(a), sigOf(b));
}

TEST(WitnessSignature, RfShapeDistinguishes)
{
    // Same programs; the only difference is which write the second
    // read observes (the store buffer outcome vs the SC one).
    auto build = [](bool stale) {
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x100, 1, kInitVal);
        ew.recordRead(0, 1, 0x140, stale ? kInitVal : 2);
        ew.recordWrite(1, 0, 0x140, 2, kInitVal);
        ew.recordRead(1, 1, 0x100, 1);
        return ew;
    };
    mc::ExecWitness fresh = build(false);
    mc::ExecWitness stale = build(true);
    EXPECT_NE(sigOf(fresh), sigOf(stale));
}

TEST(WitnessSignature, CoShapeDistinguishes)
{
    auto build = [](bool w0_first) {
        mc::ExecWitness ew;
        if (w0_first) {
            ew.recordWrite(0, 0, 0x100, 1, kInitVal);
            ew.recordWrite(1, 0, 0x100, 2, 1);
        } else {
            ew.recordWrite(0, 0, 0x100, 1, 2);
            ew.recordWrite(1, 0, 0x100, 2, kInitVal);
        }
        ew.recordRead(2, 0, 0x100, w0_first ? 2 : 1);
        return ew;
    };
    mc::ExecWitness a = build(true);
    mc::ExecWitness b = build(false);
    EXPECT_NE(sigOf(a), sigOf(b));
}

TEST(WitnessSignature, EventTypeAndRmwDistinguish)
{
    mc::ExecWitness read;
    read.recordWrite(0, 0, 0x100, 1, kInitVal);
    read.recordRead(1, 0, 0x100, 1);

    mc::ExecWitness write;
    write.recordWrite(0, 0, 0x100, 1, kInitVal);
    write.recordWrite(1, 0, 0x100, 2, 1);

    EXPECT_NE(sigOf(read), sigOf(write));

    // A read+write poi pair vs the same pair marked as an atomic RMW.
    auto pair = [](bool rmw) {
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x100, 1, kInitVal);
        ew.recordRead(1, 0, 0x100, 1, rmw);
        ew.recordWrite(1, 0, 0x100, 2, 1, rmw);
        return ew;
    };
    mc::ExecWitness plain = pair(false);
    mc::ExecWitness atomic = pair(true);
    EXPECT_NE(sigOf(plain), sigOf(atomic));
}

TEST(WitnessSignature, ThreadShapeDistinguishes)
{
    // Same multiset of events, different thread assignment.
    mc::ExecWitness one;
    one.recordWrite(0, 0, 0x100, 1, kInitVal);
    one.recordRead(0, 1, 0x100, 1);

    mc::ExecWitness two;
    two.recordWrite(0, 0, 0x100, 1, kInitVal);
    two.recordRead(1, 0, 0x100, 1);

    EXPECT_NE(sigOf(one), sigOf(two));
}

TEST(WitnessSignature, DeterministicAcrossBuildersAndRepeats)
{
    auto build = [] {
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x100, 1, kInitVal);
        ew.recordRead(1, 0, 0x100, 1);
        return ew;
    };
    mc::ExecWitness a = build();
    mc::ExecWitness b = build();
    a.finalize();
    b.finalize();

    mc::SignatureBuilder b1;
    mc::SignatureBuilder b2;
    const mc::WitnessSignature s1 = b1.compute(a);
    // Builder scratch must fully reset between computations.
    b1.compute(b);
    EXPECT_EQ(b1.compute(a), s1);
    EXPECT_EQ(b2.compute(a), s1);
}
