/**
 * @file
 * Cycle-detection graph used by the checker.
 *
 * The checker builds one graph per consistency constraint (uniproc, ghb)
 * out of generator edges -- a small set of edges whose transitive closure
 * equals the closure of the full (quadratic) relation union -- and runs a
 * single DFS (§2.1: "At the core of an axiomatic model checker ... is a
 * graph-search algorithm").
 *
 * Nodes 0..numEvents-1 are events; additional nodes (virtual fence
 * points) may be appended by architectures.
 */

#ifndef MCVERSI_MEMCONSISTENCY_GRAPH_HH
#define MCVERSI_MEMCONSISTENCY_GRAPH_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "memconsistency/event.hh"

namespace mcversi::mc {

/** Directed graph over dense int node ids, supporting cycle search. */
class CycleGraph
{
  public:
    using Node = std::int32_t;

    explicit CycleGraph(std::size_t num_nodes) : adj_(num_nodes) {}

    /** Append an extra (non-event) node; returns its id. */
    Node
    addNode()
    {
        adj_.emplace_back();
        return static_cast<Node>(adj_.size() - 1);
    }

    void
    addEdge(Node from, Node to)
    {
        adj_[static_cast<std::size_t>(from)].push_back(to);
    }

    std::size_t numNodes() const { return adj_.size(); }

    /**
     * Find any cycle.
     *
     * @return the node sequence of one cycle (first node repeated at the
     *         end is omitted), or std::nullopt if the graph is acyclic.
     */
    std::optional<std::vector<Node>> findCycle() const;

    /** Convenience: true if no cycle exists. */
    bool acyclic() const { return !findCycle().has_value(); }

  private:
    std::vector<std::vector<Node>> adj_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_GRAPH_HH
