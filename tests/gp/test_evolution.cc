/**
 * @file
 * EvolutionEngine tests: serial-GA equivalence, island/migration
 * determinism, the emitted-test golden, batch-contract enforcement,
 * and slab-pool steady-state behavior.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "common/strict.hh"
#include "gp/evolution.hh"
#include "gp/ga.hh"

using namespace mcversi;
using namespace mcversi::gp;

namespace {

GaParams
smallGa()
{
    GaParams ga;
    ga.population = 8;
    return ga;
}

GenParams
smallGen()
{
    GenParams gen;
    gen.testSize = 64;
    gen.numThreads = 4;
    gen.memSize = 1024;
    return gen;
}

/** Deterministic pseudo-fitness derived from the genome content. */
double
pseudoFitness(std::uint64_t fingerprint)
{
    return static_cast<double>(fingerprint % 1000) / 1000.0;
}

/** NdInfo derived deterministically from the genome content. */
NdInfo
pseudoNd(std::span<const Node> genes)
{
    NdInfo nd;
    nd.ndt = 1.0 + pseudoFitness(fingerprintNodes(genes));
    for (const Node &node : genes)
        if (node.op.isMem() && (node.op.addr / 16) % 2 == 0)
            nd.fitaddrs.insert(node.op.addr);
    return nd;
}

/**
 * Drive @p engine for @p evals evaluations in batches of @p batch,
 * reporting pseudo-results; returns the emitted fingerprints in order.
 */
std::vector<std::uint64_t>
drive(EvolutionEngine &engine, std::size_t evals, std::size_t batch)
{
    std::vector<std::uint64_t> fingerprints;
    std::vector<EvolutionEngine::TestRef> refs(batch);
    std::vector<EvalResult> results(batch);
    while (fingerprints.size() < evals) {
        const std::size_t n =
            std::min(batch, evals - fingerprints.size());
        engine.nextBatch({refs.data(), n});
        for (std::size_t i = 0; i < n; ++i) {
            const auto genes = engine.genome(refs[i]);
            const std::uint64_t fp = fingerprintNodes(genes);
            fingerprints.push_back(fp);
            results[i].fitness = pseudoFitness(fp);
            results[i].nd = pseudoNd(genes);
        }
        engine.reportBatch({results.data(), n});
    }
    return fingerprints;
}

} // namespace

TEST(Evolution, SingleIslandBatchOneMatchesSteadyStateGa)
{
    for (const auto mode : {XoMode::Selective, XoMode::SinglePoint}) {
        EvolutionParams evo;
        evo.islands = 1;
        EvolutionEngine engine(smallGa(), smallGen(), 2026, mode, evo);
        SteadyStateGa ga(smallGa(), smallGen(), 2026, mode);

        EvolutionEngine::TestRef ref;
        for (int i = 0; i < 48; ++i) {
            engine.nextBatch({&ref, 1});
            const gp::Test serial = ga.nextTest();
            const auto genes = engine.genome(ref);
            ASSERT_EQ(fingerprintNodes(genes), serial.fingerprint())
                << "evaluation " << i;

            const std::uint64_t fp = serial.fingerprint();
            EvalResult result;
            result.fitness = pseudoFitness(fp);
            result.nd = pseudoNd(genes);
            ga.reportResult(pseudoFitness(fp), pseudoNd(genes));
            engine.reportBatch({&result, 1});
        }
        ASSERT_EQ(engine.evaluated(), ga.evaluated());
        EXPECT_DOUBLE_EQ(engine.meanFitness(), ga.meanFitness());
        EXPECT_DOUBLE_EQ(engine.meanNdt(), ga.meanNdt());
        ASSERT_EQ(engine.islandCount(), 1u);
        const auto &pop = engine.islandPopulation(0);
        ASSERT_EQ(pop.size(), ga.populationSize());
        for (std::size_t i = 0; i < pop.size(); ++i) {
            EXPECT_EQ(fingerprintNodes(engine.memberGenome(pop[i])),
                      ga.population()[i].test.fingerprint());
            EXPECT_EQ(pop[i].fitness, ga.population()[i].fitness);
            EXPECT_EQ(pop[i].bornAt, ga.population()[i].bornAt);
        }
    }
}

TEST(Evolution, BatchSizeDoesNotChangeInitialPopulationPhase)
{
    // During the initial random phase every emitted test depends only
    // on its island's RNG stream, so batch sizes must not change them.
    EvolutionParams evo;
    evo.islands = 2;
    evo.migrationInterval = 0;
    EvolutionEngine a(smallGa(), smallGen(), 5, XoMode::Selective, evo);
    EvolutionEngine b(smallGa(), smallGen(), 5, XoMode::Selective, evo);
    // 2 islands x population 8 = 16 initial randoms.
    const auto fa = drive(a, 16, 4);
    const auto fb = drive(b, 16, 8);
    EXPECT_EQ(fa, fb);
}

TEST(Evolution, SeedDeterminismAcrossIslandsAndMigration)
{
    EvolutionParams evo;
    evo.islands = 4;
    evo.migrationInterval = 16;
    EvolutionEngine a(smallGa(), smallGen(), 99, XoMode::Selective, evo);
    EvolutionEngine b(smallGa(), smallGen(), 99, XoMode::Selective, evo);

    EXPECT_EQ(drive(a, 96, 8), drive(b, 96, 8));

    // Migration fired and its order is seed-deterministic.
    ASSERT_GT(a.migrations(), 0u);
    ASSERT_EQ(a.migrations(), b.migrations());
    ASSERT_EQ(a.migrationLog().size(), b.migrationLog().size());
    for (std::size_t i = 0; i < a.migrationLog().size(); ++i) {
        const MigrationRecord &ra = a.migrationLog()[i];
        const MigrationRecord &rb = b.migrationLog()[i];
        EXPECT_EQ(ra.atEvaluation, rb.atEvaluation);
        EXPECT_EQ(ra.fromIsland, rb.fromIsland);
        EXPECT_EQ(ra.toIsland, rb.toIsland);
        EXPECT_EQ(ra.genomeFingerprint, rb.genomeFingerprint);
        // Ring topology: i -> (i + 1) % N.
        EXPECT_EQ(rb.toIsland, (rb.fromIsland + 1) % 4);
    }

    // Final island populations are identical too.
    for (std::size_t isl = 0; isl < 4; ++isl) {
        const auto &pa = a.islandPopulation(isl);
        const auto &pb = b.islandPopulation(isl);
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i) {
            EXPECT_EQ(fingerprintNodes(a.memberGenome(pa[i])),
                      fingerprintNodes(b.memberGenome(pb[i])));
        }
    }
}

TEST(Evolution, MigrationDeliversTheDonorBest)
{
    EvolutionParams evo;
    evo.islands = 2;
    evo.migrationInterval = 16;
    EvolutionEngine engine(smallGa(), smallGen(), 3, XoMode::Selective,
                           evo);
    drive(engine, 16, 8); // Exactly one migration round.
    ASSERT_EQ(engine.migrations(), 2u);
    // Each migrated genome must now be present in the recipient island.
    for (const MigrationRecord &record : engine.migrationLog()) {
        bool found = false;
        for (const PoolIndividual &member :
             engine.islandPopulation(record.toIsland)) {
            found |= fingerprintNodes(engine.memberGenome(member)) ==
                     record.genomeFingerprint;
        }
        EXPECT_TRUE(found)
            << "migrant from island " << record.fromIsland
            << " missing in island " << record.toIsland;
    }
}

TEST(Evolution, DifferentSeedsDiverge)
{
    EvolutionParams evo;
    evo.islands = 4;
    EvolutionEngine a(smallGa(), smallGen(), 1, XoMode::Selective, evo);
    EvolutionEngine b(smallGa(), smallGen(), 2, XoMode::Selective, evo);
    EXPECT_NE(drive(a, 32, 8), drive(b, 32, 8));
}

TEST(Evolution, SlabPoolStopsGrowingInSteadyState)
{
    EvolutionParams evo;
    evo.islands = 4;
    evo.migrationInterval = 16;
    EvolutionEngine engine(smallGa(), smallGen(), 11, XoMode::Selective,
                           evo);
    drive(engine, 128, 8); // Warm up: populations full, migrations ran.
    const std::size_t slabs = engine.pool().slabCount();
    const std::size_t live = engine.pool().liveGenomes();
    drive(engine, 256, 8);
    EXPECT_EQ(engine.pool().slabCount(), slabs)
        << "steady-state evolution must not allocate genome slabs";
    EXPECT_EQ(engine.pool().liveGenomes(), live)
        << "genome slots must be recycled, not leaked";
}

TEST(Evolution, BatchContractViolationsThrowInStrictBuilds)
{
    if (!strictApiChecks())
        GTEST_SKIP() << "release build: contract checks are relaxed";

    EvolutionEngine engine(smallGa(), smallGen(), 1);
    std::array<EvolutionEngine::TestRef, 2> refs;
    engine.nextBatch({refs.data(), refs.size()});
    // Second nextBatch without a report: misuse.
    EXPECT_THROW(engine.nextBatch({refs.data(), refs.size()}),
                 std::logic_error);
    // Mismatched report size: misuse.
    std::array<EvalResult, 1> one;
    EXPECT_THROW(engine.reportBatch({one.data(), one.size()}),
                 std::logic_error);
    // Correct report succeeds.
    std::array<EvalResult, 2> two;
    EXPECT_NO_THROW(engine.reportBatch({two.data(), two.size()}));
}

TEST(Evolution, AbandonedBatchRecyclesSlotsInReleaseBuilds)
{
    if (strictApiChecks())
        GTEST_SKIP() << "strict build: abandoning a batch throws "
                        "instead of clamping";

    EvolutionEngine engine(smallGa(), smallGen(), 4);
    drive(engine, 32, 8); // Warm up past the initial population.
    const std::size_t live = engine.pool().liveGenomes();
    const std::size_t slabs = engine.pool().slabCount();
    std::vector<EvolutionEngine::TestRef> refs(8);
    for (int i = 0; i < 50; ++i)
        engine.nextBatch({refs.data(), refs.size()}); // Abandon each.
    // Tolerant release behavior must recycle the abandoned slots.
    engine.nextBatch({refs.data(), refs.size()});
    std::vector<EvalResult> results(8);
    engine.reportBatch({results.data(), results.size()});
    EXPECT_EQ(engine.pool().liveGenomes(), live);
    EXPECT_EQ(engine.pool().slabCount(), slabs);
}

/**
 * Golden: the first 64 tests emitted for seed 2026 with 4 islands,
 * batch 8, migration every 32 evaluations (Selective mode, population
 * 8 per island, 64-gene tests over 4 threads and 1KB test memory).
 * Pins the engine's full decision sequence -- per-island RNG streams,
 * round-robin island schedule, selection, crossover and mutation -- to
 * a fixed artifact. After an intentional engine change, regenerate by
 * running this binary with MCVERSI_UPDATE_GOLDEN=1 (rewrites
 * evolution_golden_fingerprints.inc in the source tree) and rebuilding.
 */
TEST(Evolution, GoldenFirst64EmittedTests)
{
    EvolutionParams evo;
    evo.islands = 4;
    evo.migrationInterval = 32;
    EvolutionEngine engine(smallGa(), smallGen(), 2026,
                           XoMode::Selective, evo);
    const std::vector<std::uint64_t> got = drive(engine, 64, 8);

    if (std::getenv("MCVERSI_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(MCVERSI_EVOLUTION_GOLDEN_PATH,
                          std::ios::binary);
        for (std::size_t i = 0; i < got.size(); ++i) {
            out << "    " << got[i] << "ull,"
                << (i % 2 == 1 ? "\n" : "");
        }
        ASSERT_TRUE(out.good())
            << "failed to write " << MCVERSI_EVOLUTION_GOLDEN_PATH;
        GTEST_SKIP() << "golden regenerated at "
                     << MCVERSI_EVOLUTION_GOLDEN_PATH
                     << "; rebuild to compile it in";
    }

    const std::array<std::uint64_t, 64> expected = {
#include "evolution_golden_fingerprints.inc"
    };
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "emitted test " << i;
}
