/**
 * @file
 * TSO-CC-style lazy consistency-directed coherence: private L1.
 *
 * Following Elver & Nagarajan (HPCA 2014), the protocol keeps TSO
 * without tracking sharers: Shared lines are read without registration
 * and readers self-invalidate instead of being invalidated.
 *
 *  - Shared lines may be read at most maxAccesses times before being
 *    re-fetched (bounded staleness).
 *  - Writers stamp lines with (writer, timestamp, epoch); timestamps
 *    advance every groupSize writes (timestamp groups).
 *  - When a fetch returns a line whose timestamp is *larger or equal*
 *    than the last-seen timestamp from that writer (or whose epoch is
 *    unknown/mismatched, or that has no metadata), the reader
 *    self-invalidates all its Shared lines.
 *  - When a writer's timestamp overflows it resets and broadcasts a new
 *    epoch-id, which avoids races between resets and in-flight requests.
 *
 * Bug injections (§5.3):
 *  - TSO-CC+no-epoch-ids: resets happen silently; comparisons use raw
 *    timestamps only.
 *  - TSO-CC+compare: 'larger' instead of 'larger or equal'.
 *
 * Ownership (writes) remains directory-tracked at the L2, exactly one
 * owner at a time, so SWMR is violated only for reads.
 */

#ifndef MCVERSI_SIM_TSOCC_TSOCC_L1_HH
#define MCVERSI_SIM_TSOCC_TSOCC_L1_HH

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "sim/cache_array.hh"
#include "sim/config.hh"
#include "sim/eventq.hh"
#include "sim/network.hh"
#include "sim/ports.hh"
#include "sim/transition_table.hh"

namespace mcversi::sim {

/** Private L1 controller for the TSO-CC protocol. */
class TsoccL1 : public L1Cache, public MsgHandler
{
  public:
    enum State : std::uint8_t {
        StI,
        StS,
        StM,
        StIS,
        StIM,
        StMI,  ///< side buffer: PUTX outstanding
        StII,  ///< side buffer: recall acked while MI
        StCtrl, ///< pseudo-state for controller-wide events
        NumStates,
    };

    enum Event : std::uint8_t {
        EvLoad,
        EvLoadExpired,
        EvStore,
        EvRmw,
        EvFlush,
        EvReplacement,
        EvData,
        EvRecall,
        EvWbAck,
        EvWbNack,
        EvTsReset,
        EvSelfInvalidate,
        NumEvents,
    };

    TsoccL1(Pid pid, const SystemConfig &cfg, EventQueue &eq, Network &net,
            TransitionCoverage &cov, Rng rng);

    void setHooks(CoreHooks hooks) override { hooks_ = std::move(hooks); }

    void coreLoad(ReqId id, Addr addr) override;
    void coreStore(ReqId id, Addr addr, WriteVal value) override;
    void coreRmw(ReqId id, Addr addr, WriteVal value) override;
    void coreFlush(ReqId id, Addr addr) override;

    void handleMsg(const Msg &msg) override;
    void resetAll() override;

    State lineState(Addr line);

    /** One-line state summary for deadlock diagnosis. */
    std::string debugSummary();

    /** Tests: last-seen timestamp table entry for a writer. */
    struct Seen
    {
        bool valid = false;
        std::uint32_t epoch = 0;
        std::uint32_t ts = 0;
    };
    const Seen &lastSeen(Pid writer) const { return lastSeen_[writer]; }
    std::uint32_t currentTs() const { return curTs_; }
    std::uint32_t currentEpoch() const { return curEpoch_; }
    std::uint64_t selfInvalidations() const { return selfInvs_; }

  private:
    struct PendingReq
    {
        enum class Kind { Load, Store, Rmw, Flush } kind;
        ReqId id;
        Addr addr;
        WriteVal value;
    };

    struct EvictBuf
    {
        State state = StMI;
        bool flushPending = false;
        ReqId flushReq = 0;
    };

    void buildTable();
    NodeId home(Addr line) const;
    void send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill = {});
    void respond(ReqId id, WriteVal value, WriteVal overwritten,
                 Tick latency);
    void notifyLq(Addr line);

    void enqueue(const PendingReq &req);
    void processPending(Addr line);
    bool startMiss(Addr line, bool exclusive);
    bool evictVictim(Addr line);
    void doReplacement(CacheEntry &entry);

    /** Advance the write timestamp machinery after one store. */
    void stampWrite(CacheEntry &entry);
    /** Apply the self-invalidation rule for incoming metadata. */
    void applySelfInvRule(const TsMeta &meta, Addr except_line);
    /**
     * Sweep all Shared lines.
     *
     * @param flag_in_flight also mark in-flight read fills to be
     *        consumed as invalidated (replayed): their data was served
     *        before the acquire point this sweep represents. Always
     *        set by the protocol; the replay storms this conservatism
     *        can cause under extreme conflict are bounded by the
     *        workload-level livelock watchdog.
     */
    void selfInvalidateShared(Addr except_line, bool flag_in_flight);

    Pid pid_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    Network &net_;
    TransitionTable table_;
    Rng rng_;
    CoreHooks hooks_;

    CacheArray array_;
    std::unordered_map<Addr, EvictBuf> evict_;
    std::unordered_map<Addr, std::deque<PendingReq>> pending_;

    std::vector<Seen> lastSeen_;
    std::uint32_t curTs_ = 1;
    std::uint32_t curEpoch_ = 0;
    int writesInGroup_ = 0;
    std::uint64_t selfInvs_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_TSOCC_TSOCC_L1_HH
