/**
 * @file
 * OoO-lite core model (Table 2: simple out-of-order, ROB 40, LSQ 32).
 *
 * The model captures exactly the reordering behaviour MCM verification
 * cares about:
 *
 *  - Loads issue speculatively out of order (jittered ready times) and
 *    retire in order. The load queue squashes performed-but-unretired
 *    loads when the L1 forwards an invalidation for their line (or when
 *    data arrives flagged invalidated-in-flight), the standard
 *    "Peekaboo" discipline. BUG LQ+no-TSO disables the reaction.
 *  - Stores retire into a post-commit store buffer that drains FIFO.
 *    BUG SQ+no-FIFO drains out of order.
 *  - RMWs execute atomically at the L1 when oldest, with the store
 *    buffer drained, and squash younger performed loads on completion
 *    (x86 lock prefix = full fence).
 *  - Loads forward from the store buffer (TSO rfi).
 *
 * The core records committed events into the ExecWitness: loads at
 * retire, stores when they serialize at the cache.
 */

#ifndef MCVERSI_SIM_CPU_CORE_HH
#define MCVERSI_SIM_CPU_CORE_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "memconsistency/execwitness.hh"
#include "sim/config.hh"
#include "sim/cpu/lsq.hh"
#include "sim/cpu/program.hh"
#include "sim/eventq.hh"
#include "sim/ports.hh"

namespace mcversi::sim {

/** One simulated hardware thread. */
class Core
{
  public:
    Core(Pid pid, const SystemConfig &cfg, EventQueue &eq, L1Cache *l1,
         Rng rng);

    /** Witness that committed events are recorded into (per iteration). */
    void setWitness(mc::ExecWitness *witness) { witness_ = witness; }

    /** Source of globally unique write values. */
    void setValueSource(std::function<WriteVal()> src)
    {
        valueSource_ = std::move(src);
    }

    /** Called once when the core finishes its program + drains. */
    void setDoneCallback(std::function<void(Pid)> cb)
    {
        doneCallback_ = std::move(cb);
    }

    /** Load a new program (make_test_thread). */
    void loadProgram(Program program);

    /** Start executing the loaded program at @p start_tick. */
    void start(Tick start_tick);

    bool done() const { return done_; }
    Pid pid() const { return pid_; }

    /** One-line progress summary for deadlock diagnosis. */
    std::string debugState() const;

    // Statistics.
    std::uint64_t squashes() const { return squashes_; }
    std::uint64_t loadsExecuted() const { return loads_; }
    std::uint64_t storesExecuted() const { return stores_; }
    std::uint64_t forwardedLoads() const { return forwards_; }

  private:
    enum class LoadState : std::uint8_t {
        Waiting,
        Issued,
        Performed,
        Done,
    };

    struct DynInstr
    {
        LoadState st = LoadState::Waiting;
        Addr addr = 0;
        bool addrValid = false;
        WriteVal value = 0;       ///< load result / store+RMW new value
        WriteVal rmwOld = 0;      ///< RMW read value (== overwritten)
        bool squashPending = false;
        bool issued = false;      ///< RMW / flush issued flag
        bool delayArmed = false;
        Tick delayEnd = 0;
        int depSlot = -1;
        /** Replay count, for exponential backoff (breaks replay storms). */
        std::uint8_t replays = 0;
    };

    // L1 hooks.
    void onCacheResp(const CacheResp &resp);
    void onAddressInvalidated(Addr line);

    // Typed-event trampolines (EventQueue::EventFn signature).
    static void evPump(void *o, std::uint64_t, std::uint64_t,
                       std::uint64_t, std::uint64_t);
    static void evPumpClearFlag(void *o, std::uint64_t, std::uint64_t,
                                std::uint64_t, std::uint64_t);
    static void evTryIssueLoad(void *o, std::uint64_t slot,
                               std::uint64_t, std::uint64_t,
                               std::uint64_t);
    static void evDone(void *o, std::uint64_t, std::uint64_t,
                       std::uint64_t, std::uint64_t);

    void schedulePump(Tick delta = 0);
    void pump();
    void fetch();
    void retireLoop();
    void tryIssueLoad(std::size_t slot);
    void markPerformed(std::size_t slot, WriteVal value, bool flagged);
    /** Re-issue address-dependent loads waiting on @p slot's value. */
    void wakeDependents(std::size_t slot);
    /** Full squash of all loads >= slot (fence semantics). */
    void squashFrom(std::size_t slot);
    /** Targeted squash: one load plus its address-dependents. */
    void squashLoad(std::size_t slot);
    void tryDrainStore();
    bool isLoad(std::size_t slot) const;

    Pid pid_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    L1Cache *l1_;
    Rng rng_;
    mc::ExecWitness *witness_ = nullptr;
    std::function<WriteVal()> valueSource_;
    std::function<void(Pid)> doneCallback_;

    Program program_;
    std::vector<DynInstr> dyn_;
    std::size_t fetchPtr_ = 0;
    std::size_t retirePtr_ = 0;
    StoreQueue sq_;
    bool storeInFlight_ = false;
    std::size_t storeInFlightSlot_ = 0;
    bool done_ = true;
    bool pumpScheduled_ = false;

    ReqId nextReq_ = 1;
    std::unordered_map<ReqId, std::size_t> loadReqs_;
    std::unordered_map<ReqId, std::size_t> rmwReqs_;
    std::unordered_map<ReqId, std::size_t> flushReqs_;
    ReqId storeReq_ = 0;

    std::uint64_t squashes_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t forwards_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CPU_CORE_HH
