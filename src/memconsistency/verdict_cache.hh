/**
 * @file
 * Sharded LRU cache of check verdicts per witness equivalence class.
 *
 * Collective checking: the checker consults this cache (keyed by
 * WitnessSignature) before running the full cycle analysis, so a
 * campaign pays the full check once per *distinct* interleaving shape
 * and a signature computation for every repeat. The distinct-signature
 * counter doubles as campaign telemetry: it measures how many checking
 * equivalence classes the generator actually explored.
 *
 * Layout follows the repo's hot-path discipline: all storage is flat
 * arrays sized at construction, so steady-state lookups and insertions
 * (including evictions) are allocation-free. Each shard owns an
 * open-addressing index (linear probing, backward-shift deletion) over
 * an intrusive doubly-linked LRU list threaded through a fixed slot
 * pool. Shards bound the probe-chain length under load; they are NOT a
 * concurrency mechanism -- the cache, like its owning Checker, is
 * single-threaded, and parallel harnesses own one cache per lane (which
 * also keeps per-lane hit sequences, and hence campaign summaries,
 * byte-identical across worker counts).
 *
 * Verdicts are stored as a CheckResult::Kind byte only. The checker
 * short-circuits solely on Ok hits (an Ok verdict carries no message or
 * cycle, so the cached answer is byte-identical to a fresh check);
 * violation hits are advisory -- the checker re-runs the full analysis
 * to rebuild the diagnostic in the current witness's event ids.
 */

#ifndef MCVERSI_MEMCONSISTENCY_VERDICT_CACHE_HH
#define MCVERSI_MEMCONSISTENCY_VERDICT_CACHE_HH

#include <cstdint>
#include <vector>

#include "memconsistency/signature.hh"

namespace mcversi::mc {

/** Fixed-capacity sharded LRU map: WitnessSignature -> verdict byte. */
class VerdictCache
{
  public:
    struct Config
    {
        /** Total entries across all shards (rounded up per shard). */
        std::size_t capacity = 4096;
        /** Shard count (clamped to [1, capacity]). */
        std::size_t shards = 8;
    };

    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        /**
         * Distinct signatures inserted since the last clear().
         * Monotonic: unlike size(), eviction does not decrease it.
         * Exact while no eviction has occurred; afterwards an evicted
         * class that reappears is counted again.
         */
        std::uint64_t distinct = 0;

        double
        hitRate() const
        {
            return lookups == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups);
        }
    };

    VerdictCache() : VerdictCache(Config{}) {}
    explicit VerdictCache(Config config);

    /**
     * Look up @p sig; on a hit, stores the cached verdict byte in
     * @p verdict_out, marks the entry most-recently-used, and returns
     * true. Counts into stats either way.
     */
    bool lookup(const WitnessSignature &sig, std::uint8_t &verdict_out);

    /**
     * Insert (or refresh) @p sig -> @p verdict, evicting the shard's
     * least-recently-used entry if full. A re-insert of a present key
     * only touches recency (verdicts are immutable per class).
     */
    void insert(const WitnessSignature &sig, std::uint8_t verdict);

    /** Drop all entries and reset stats; keeps allocated storage. */
    void clear();

    const Stats &stats() const { return stats_; }
    /** Currently resident entries. */
    std::size_t size() const;
    /** Total entry capacity (per-shard rounding may exceed Config's). */
    std::size_t capacity() const;
    std::size_t shardCount() const { return shards_.size(); }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Entry
    {
        WitnessSignature sig{};
        std::uint32_t prev = kNil; ///< toward most-recently-used
        std::uint32_t next = kNil; ///< toward least-recently-used
        std::uint8_t verdict = 0;
    };

    struct Shard
    {
        std::vector<Entry> slots;        ///< fixed pool, [0, used) live
        std::vector<std::uint32_t> table; ///< probe index -> slot | kNil
        std::uint32_t mask = 0;          ///< table.size() - 1
        std::uint32_t head = kNil;       ///< most-recently-used slot
        std::uint32_t tail = kNil;       ///< least-recently-used slot
        std::uint32_t used = 0;
    };

    Shard &shardFor(const WitnessSignature &sig);
    /** Probe position holding @p sig, or the empty slot ending its
     * chain. */
    static std::uint32_t findPos(const Shard &sh,
                                 const WitnessSignature &sig);
    static void unlink(Shard &sh, std::uint32_t slot);
    static void pushFront(Shard &sh, std::uint32_t slot);
    /** Backward-shift deletion keeping every probe chain contiguous. */
    static void eraseTableAt(Shard &sh, std::uint32_t pos);

    std::vector<Shard> shards_;
    Stats stats_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_VERDICT_CACHE_HH
