/**
 * @file
 * Crossover and mutation operators (§3.3, Algorithm 1).
 *
 * The selective crossover gives preference to memory operations involved
 * in races: nodes whose address is in a parent's fitaddrs set are always
 * inherited, preserving the sequences of operations that contribute to
 * the non-deterministic outcome. Slots selected from neither parent are
 * regenerated randomly (implicit, directed mutation), optionally with
 * addresses biased towards the union of both parents' fitaddrs (PBFA).
 *
 * The standard single-point crossover (McVerSi-Std.XO in the paper) is
 * provided for comparison.
 *
 * Each operator comes in two forms with identical RNG draw sequences:
 * a value form over Test (allocates the child) and a span form writing
 * into caller-provided gene storage (the slab-backed genome pool of the
 * EvolutionEngine; allocation-free in the steady state).
 */

#ifndef MCVERSI_GP_CROSSOVER_HH
#define MCVERSI_GP_CROSSOVER_HH

#include <span>

#include "common/rng.hh"
#include "gp/ndmetrics.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Fraction of memory operations guaranteed to be selected (Alg. 1). */
double fitaddrFraction(std::span<const Node> genes,
                       const AddrSet &fitaddrs);

inline double
fitaddrFraction(const Test &test, const AddrSet &fitaddrs)
{
    return fitaddrFraction(test.genes(), fitaddrs);
}

/**
 * Selective crossover + mutation (Algorithm 1), writing the child into
 * @p child. All three spans must have the same length; @p child must
 * not alias either parent.
 *
 * @param t1, nd1  first parent's genes and test-run non-determinism info
 * @param t2, nd2  second parent's genes and info
 * @param gen      factory for random replacement nodes
 * @param ga       GA parameters (PUSEL, PBFA, PMUT)
 * @param rng      randomness source
 * @param fit_union scratch for the parents' fitaddr union (capacity
 *                  reused across calls)
 */
void crossoverMutateInto(std::span<const Node> t1, const NdInfo &nd1,
                         std::span<const Node> t2, const NdInfo &nd2,
                         const RandomTestGen &gen, const GaParams &ga,
                         Rng &rng, std::span<Node> child,
                         AddrSet &fit_union);

/** Value form of crossoverMutateInto (same RNG draw sequence). */
Test crossoverMutate(const Test &t1, const NdInfo &nd1,
                     const Test &t2, const NdInfo &nd2,
                     const RandomTestGen &gen, const GaParams &ga,
                     Rng &rng);

/**
 * Standard single-point crossover over the flat list (McVerSi-Std.XO),
 * followed by per-gene mutation with probability PMUT, writing into
 * @p child (must not alias either parent).
 */
void singlePointCrossoverMutateInto(std::span<const Node> t1,
                                    std::span<const Node> t2,
                                    const RandomTestGen &gen,
                                    const GaParams &ga, Rng &rng,
                                    std::span<Node> child);

/** Value form of singlePointCrossoverMutateInto (same draw sequence). */
Test singlePointCrossoverMutate(const Test &t1, const Test &t2,
                                const RandomTestGen &gen,
                                const GaParams &ga, Rng &rng);

} // namespace mcversi::gp

#endif // MCVERSI_GP_CROSSOVER_HH
