/**
 * @file
 * Table 4 reproduction: bug coverage per generator configuration.
 *
 * For every generator configuration (McVerSi-ALL / Std.XO / RAND at
 * 1KB and 8KB, plus diy-litmus) and every studied bug, run several
 * samples with a test-run budget and report "found count (mean
 * test-runs to bug)". The paper's metric is hours on a fixed host; the
 * shape to compare is *who finds which bug, and relatively how fast*:
 * McVerSi-ALL (8KB) must find all 11 bugs; 1KB configurations must
 * miss the replacement-dependent bugs; litmus finds only what its
 * final conditions can express.
 *
 * The whole {bug} x {config} x {sample} matrix is one campaign run;
 * scale with MCVERSI_BENCH_SCALE / MCVERSI_BENCH_SAMPLES /
 * MCVERSI_BENCH_THREADS, export with MCVERSI_BENCH_JSON/CSV.
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const int samples = benchSamples(2);
    const auto max_runs =
        static_cast<std::uint64_t>(250 * scale);
    const double max_secs = 18.0 * scale;

    const std::vector<GenConfig> configs = {
        GenConfig::All1K,   GenConfig::All8K, GenConfig::StdXo1K,
        GenConfig::StdXo8K, GenConfig::Rand1K, GenConfig::Rand8K,
        GenConfig::DiyLitmus,
    };

    // Cell-major spec order: samples of one (bug, config) cell are
    // contiguous, so cell c starts at index c * samples.
    std::vector<campaign::CampaignSpec> specs;
    for (const sim::BugInfo &bug : sim::allBugs()) {
        for (GenConfig config : configs) {
            for (int s = 0; s < samples; ++s) {
                specs.push_back(benchSpec(config, bug.name,
                                          cellSeed(s, bug.id, config),
                                          max_runs, max_secs));
            }
        }
    }
    const campaign::CampaignSummary summary = runBenchCampaigns(specs);

    std::printf("Table 4: bug coverage -- found/%d samples "
                "(mean test-runs to bug); NF = not found\n",
                samples);
    std::printf("budget: %llu test-runs or %.0fs per sample\n\n",
                static_cast<unsigned long long>(max_runs), max_secs);

    std::printf("%-24s", "Bug");
    for (GenConfig c : configs)
        std::printf(" | %-20s", genConfigName(c));
    std::printf("\n");

    // Summary accumulators ("All" row of Table 4).
    std::vector<int> total_found(configs.size(), 0);
    std::vector<double> total_runs_sum(configs.size(), 0.0);
    std::vector<int> total_runs_cnt(configs.size(), 0);

    std::size_t cell_begin = 0;
    for (const sim::BugInfo &bug : sim::allBugs()) {
        std::printf("%-24s", bug.name);
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            const CellResult cell =
                aggregateCell(summary.results, cell_begin,
                              static_cast<std::size_t>(samples));
            cell_begin += static_cast<std::size_t>(samples);
            total_found[ci] += cell.found;
            if (cell.found > 0) {
                total_runs_sum[ci] += cell.meanRunsToBug;
                total_runs_cnt[ci] += 1;
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%d (%.0f)",
                              cell.found, cell.meanRunsToBug);
                std::printf(" | %-20s", buf);
            } else {
                std::printf(" | %-20s", "NF");
            }
        }
        std::printf("\n");
    }

    std::printf("%-24s", "All");
    const int max_total =
        static_cast<int>(sim::allBugs().size()) * samples;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        char buf[32];
        if (total_runs_cnt[ci] > 0) {
            std::snprintf(
                buf, sizeof(buf), "%d/%d (%.0f)", total_found[ci],
                max_total,
                total_runs_sum[ci] / total_runs_cnt[ci]);
        } else {
            std::snprintf(buf, sizeof(buf), "0/%d", max_total);
        }
        std::printf(" | %-20s", buf);
    }
    std::printf("\n");
    return 0;
}
