#include "host/interface.hh"

namespace mcversi::host {

std::vector<Addr>
TestMemLayout::wordAddrs() const
{
    std::vector<Addr> out;
    out.reserve(memSize_ / kWordBytes);
    for (Addr logical = 0; logical < memSize_; logical += kWordBytes)
        out.push_back(toPhys(logical));
    return out;
}

Tick
HostServices::barrierWaitPrecise(Tick max_skew)
{
    // Host-assisted barrier: all threads released at a common tick,
    // plus at most max_skew cycles of start offset. A guest software
    // barrier would add hundreds of cycles of skew and extra coherence
    // traffic; callers model that by passing a large max_skew.
    sim::EventQueue &eq = system_.eventQueue();
    const Tick base = eq.now() + 10;
    for (Pid p = 0; p < static_cast<Pid>(system_.numCores()); ++p) {
        const Tick skew = max_skew == 0 ? 0 : skewRng_.below(max_skew + 1);
        system_.core(p).start(base + skew);
    }
    return base;
}

void
HostServices::resetTestMem()
{
    system_.resetProtocolState();
    system_.zeroMemory(layout_.wordAddrs());
}

} // namespace mcversi::host
