/**
 * @file
 * §5.2.1 companion: checker cost as a fraction of total wall-clock.
 *
 * The paper reports that with 1k-op tests the checker generally uses
 * between 30%% and 40%% of the total wall-clock time. This bench runs
 * test-runs at the paper's full test size and reports the measured
 * fraction, plus absolute checking throughput (events/s). A timing
 * study must not share cores with other campaigns, so this is a
 * single serial CampaignRunner::runOne.
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();

    campaign::CampaignSpec spec;
    spec.generator = "McVerSi-RAND";
    spec.seed = 17;
    spec.testSize = 1000; // Table 3: the paper's test size
    spec.iterations = 10; // Table 3
    spec.maxTestRuns = static_cast<std::uint64_t>(20 * scale);

    const campaign::CampaignResult run =
        campaign::CampaignRunner::runOne(spec);
    if (!run.ok()) {
        std::fprintf(stderr, "campaign error: %s\n", run.error.c_str());
        return 1;
    }
    const host::HarnessResult &result = run.harness;

    const double frac = result.checkSeconds / result.wallSeconds;
    std::printf("checker cost at 1k-op tests, 10 iterations/run "
                "(%llu test-runs):\n",
                static_cast<unsigned long long>(result.testRuns));
    std::printf("  total wall:    %.3f s\n", result.wallSeconds);
    std::printf("  checker wall:  %.3f s\n", result.checkSeconds);
    std::printf("  fraction:      %.1f%%   (paper: 30-40%%)\n",
                100.0 * frac);
    std::printf("  events checked: %llu (%.0f events/s in checker)\n",
                static_cast<unsigned long long>(result.eventsExecuted),
                static_cast<double>(result.eventsExecuted) /
                    result.checkSeconds);
    return 0;
}
