# Shared compile/link options for all McVerSi targets, carried by the
# INTERFACE target mcversi_build_flags (aliased as mcversi::build_flags).

add_library(mcversi_build_flags INTERFACE)
add_library(mcversi::build_flags ALIAS mcversi_build_flags)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(mcversi_build_flags INTERFACE
    -Wall -Wextra)
  if(MCVERSI_WERROR)
    target_compile_options(mcversi_build_flags INTERFACE -Werror)
  endif()
endif()

if(MCVERSI_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "MCVERSI_SANITIZE requires GCC or Clang")
  endif()
  # Global (not per-target) so third-party code built via FetchContent
  # (GoogleTest) is instrumented too; mixing instrumented and
  # uninstrumented code across the gtest boundary triggers ASan
  # container-overflow false positives.
  add_compile_options(
    -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_link_options(-fsanitize=address,undefined)
  # Sanitizer builds also get the strict event-queue contract:
  # scheduling in the past throws instead of silently clamping (it
  # hides protocol latency bugs); release builds keep the clamp.
  add_compile_definitions(MCVERSI_STRICT_SCHEDULE=1)
endif()

# Helper: define a McVerSi static library target <name> from the given
# sources, rooted at src/ for includes, linked against the listed deps.
function(mcversi_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(${name} STATIC ${ARG_SOURCES})
  add_library(mcversi::${name} ALIAS ${name})
  target_include_directories(${name} PUBLIC "${PROJECT_SOURCE_DIR}/src")
  target_link_libraries(${name} PUBLIC mcversi::build_flags ${ARG_DEPS})
endfunction()
