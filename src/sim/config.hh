/**
 * @file
 * System configuration (Table 2 of the paper).
 *
 * Defaults mirror the paper's evaluation platform: 8 out-of-order cores,
 * 32KB 4-way private L1s, 8 x 128KB 4-way shared NUCA L2 tiles, 64B
 * lines, a 2-row 2D mesh, and 120-230 cycle memory.
 */

#ifndef MCVERSI_SIM_CONFIG_HH
#define MCVERSI_SIM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/bugs.hh"

namespace mcversi::sim {

/** Coherence protocol selection. */
enum class Protocol : std::uint8_t {
    Mesi,
    Tsocc,
};

/** Full system configuration. */
struct SystemConfig
{
    int numCores = 8;
    Protocol protocol = Protocol::Mesi;
    BugId bug = BugId::None;
    std::uint64_t seed = 1;

    // L1: 32KB, 64B lines, 4-way => 128 sets (Table 2).
    int l1Sets = 128;
    int l1Ways = 4;
    Tick l1HitLatency = 3;

    // L2: 128KB x 8 tiles, 64B lines, 4-way => 512 sets/tile (Table 2).
    int l2SetsPerTile = 512;
    int l2Ways = 4;
    Tick l2AccessLatency = 20;

    // Core (Table 2: LSQ 32 entries, ROB 40 entries).
    int robSize = 40;
    int lqSize = 16;
    int sqSize = 16;
    /** Max jitter added to a load's issue-ready time (OoO modelling). */
    Tick issueJitter = 6;

    // Memory (Table 2: 120 to 230 cycles).
    Tick memMinLatency = 120;
    Tick memMaxLatency = 230;

    // Network (Table 2: 2D mesh, 2 rows).
    int meshCols = 4;
    int meshRows = 2;
    Tick netBaseLatency = 2;
    Tick netPerHop = 3;
    Tick netMaxJitter = 5;

    // TSO-CC parameters. Small limits force frequent timestamp-group
    // rollover and resets so the epoch machinery is exercised.
    int tsoccMaxAccesses = 16; ///< shared-line accesses before refetch
    int tsoccGroupSize = 4;    ///< writes sharing one timestamp
    std::uint32_t tsoccMaxTs = 31; ///< timestamp reset threshold

    int
    numL2Tiles() const
    {
        return numCores;
    }

    /** Home L2 tile of a line address. */
    int
    homeTile(Addr line) const
    {
        return static_cast<int>((line / kLineBytes) %
                                static_cast<Addr>(numL2Tiles()));
    }
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CONFIG_HH
