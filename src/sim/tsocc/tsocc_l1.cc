#include "sim/tsocc/tsocc_l1.hh"

#include <cassert>
#include <sstream>

namespace mcversi::sim {

namespace {

const std::vector<std::string> kStateNames = {
    "I", "S", "M", "IS", "IM", "MI", "II", "Ctrl",
};

const std::vector<std::string> kEventNames = {
    "Load", "LoadExpired", "Store",  "Rmw",    "Flush",   "Replacement",
    "Data", "Recall",      "WbAck",  "WbNack", "TsReset", "SelfInv",
};

} // namespace

TsoccL1::TsoccL1(Pid pid, const SystemConfig &cfg, EventQueue &eq,
                 Network &net, TransitionCoverage &cov, Rng rng)
    : pid_(pid), cfg_(cfg), eq_(eq), net_(net),
      table_(cov, "TSOCC-L1", kStateNames, kEventNames), rng_(rng),
      array_(cfg.l1Sets, cfg.l1Ways),
      lastSeen_(static_cast<std::size_t>(cfg.numCores))
{
    buildTable();
}

void
TsoccL1::buildTable()
{
    auto def = [this](State s, Event e) { table_.define(s, e); };

    def(StI, EvLoad);
    def(StI, EvStore);
    def(StI, EvRmw);
    def(StI, EvFlush);

    def(StS, EvLoad);
    def(StS, EvLoadExpired);
    def(StS, EvStore);
    def(StS, EvRmw);
    def(StS, EvFlush);
    def(StS, EvReplacement);
    def(StS, EvSelfInvalidate);

    def(StM, EvLoad);
    def(StM, EvStore);
    def(StM, EvRmw);
    def(StM, EvFlush);
    def(StM, EvReplacement);
    def(StM, EvRecall);

    def(StIS, EvData);
    def(StIM, EvData);

    def(StMI, EvRecall);
    def(StMI, EvWbAck);
    def(StMI, EvWbNack);
    def(StII, EvWbAck);
    def(StII, EvWbNack);

    def(StCtrl, EvTsReset);
}

NodeId
TsoccL1::home(Addr line) const
{
    return l2Node(cfg_.homeTile(line));
}

void
TsoccL1::send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill)
{
    Msg &msg = net_.stage();
    msg.type = t;
    msg.line = line;
    msg.src = coreNode(pid_);
    msg.dst = dst;
    msg.vnet = vnet;
    msg.requester = pid_;
    if (fill)
        fill(msg);
    net_.send(&msg);
}

void
TsoccL1::respond(ReqId id, WriteVal value, WriteVal overwritten,
                 Tick latency)
{
    eq_.scheduleFnIn(
        latency,
        [](void *o, std::uint64_t a, std::uint64_t b, std::uint64_t c,
           std::uint64_t) {
            auto *self = static_cast<TsoccL1 *>(o);
            self->hooks_.respond(CacheResp{a, b, c, false});
        },
        this, id, value, overwritten);
}

void
TsoccL1::notifyLq(Addr line)
{
    if (hooks_.addressInvalidated)
        hooks_.addressInvalidated(line);
}

TsoccL1::State
TsoccL1::lineState(Addr line)
{
    if (auto it = evict_.find(line); it != evict_.end())
        return it->second.state;
    if (CacheEntry *e = array_.find(line))
        return static_cast<State>(e->state);
    return StI;
}

std::string
TsoccL1::debugSummary()
{
    std::ostringstream os;
    os << "TsoccL1[" << pid_ << "] pendingLines=" << pending_.size();
    for (const auto &[line, q] : pending_) {
        os << " 0x" << std::hex << line << std::dec << "(q=" << q.size()
           << ",st=" << static_cast<int>(lineState(line)) << ")";
    }
    os << " evict=" << evict_.size();
    return os.str();
}

// ---------------------------------------------------------------------
// Timestamp machinery.
// ---------------------------------------------------------------------

void
TsoccL1::stampWrite(CacheEntry &entry)
{
    entry.meta.writer = pid_;
    entry.meta.ts = curTs_;
    entry.meta.epoch = curEpoch_;
    if (++writesInGroup_ >= cfg_.tsoccGroupSize) {
        writesInGroup_ = 0;
        if (++curTs_ > cfg_.tsoccMaxTs) {
            // Timestamp reset. With epoch-ids, the new epoch is
            // broadcast so other cores treat in-flight old-epoch
            // metadata conservatively.
            // BUG TSO-CC+no-epoch-ids: the reset happens silently.
            curTs_ = 1;
            curEpoch_ += 1;
            if (cfg_.bug != BugId::TsoccNoEpochIds) {
                for (Pid p = 0; p < static_cast<Pid>(cfg_.numCores);
                     ++p) {
                    if (p == pid_)
                        continue;
                    send(MsgType::TsReset, 0, coreNode(p), Vnet::Fwd,
                         [&](Msg &m) { m.meta.epoch = curEpoch_; });
                }
            }
        }
    }
}

void
TsoccL1::applySelfInvRule(const TsMeta &meta, Addr except_line)
{
    if (meta.valid() && meta.writer == pid_)
        return; // Own writes need no self-invalidation.

    bool newer;
    bool strictly_newer = false;
    if (!meta.valid()) {
        // No metadata means the line has never been written (the L2's
        // directory store persists metadata across evictions), so the
        // read observes only the initial value and imposes no
        // ordering: no self-invalidation needed. This also keeps cold
        // fills from sweeping, which would flag every concurrent
        // in-flight fill and livelock the replay machinery.
        newer = false;
    } else {
        Seen &seen = lastSeen_[static_cast<std::size_t>(meta.writer)];
        // BUG TSO-CC+compare: 'larger' instead of 'larger or equal'.
        const bool ts_newer = (cfg_.bug == BugId::TsoccCompare)
                                  ? (meta.ts > seen.ts)
                                  : (meta.ts >= seen.ts);
        if (cfg_.bug == BugId::TsoccNoEpochIds) {
            newer = !seen.valid || ts_newer;
            strictly_newer = !seen.valid || meta.ts > seen.ts;
        } else {
            newer = !seen.valid || meta.epoch != seen.epoch || ts_newer;
            strictly_newer = !seen.valid || meta.epoch != seen.epoch ||
                             meta.ts > seen.ts;
        }
        // Update the last-seen table.
        if (!seen.valid || meta.epoch != seen.epoch) {
            if (cfg_.bug == BugId::TsoccNoEpochIds) {
                // Epochs ignored: only ever move the timestamp up.
                if (!seen.valid || meta.ts > seen.ts)
                    seen.ts = meta.ts;
                seen.valid = true;
            } else {
                seen = Seen{true, meta.epoch, meta.ts};
            }
        } else if (meta.ts > seen.ts) {
            seen.ts = meta.ts;
        }
    }
    (void)strictly_newer;
    if (newer) {
        // In-flight fills are always flagged: an equality-triggered
        // sweep (timestamp groups) can still cross a fill whose data
        // predates a same-group write. The replay storms this can
        // cause under extreme conflict are bounded by the workload's
        // livelock watchdog.
        selfInvalidateShared(except_line, true);
    }
}

void
TsoccL1::selfInvalidateShared(Addr except_line, bool flag_in_flight)
{
    std::vector<Addr> doomed;
    array_.forEachValid([&](CacheEntry &e) {
        if (e.state == StS && e.line != except_line)
            doomed.push_back(e.line);
        // A read fill in flight was served before this acquire point:
        // its data may be stale relative to what triggered the sweep,
        // so it must be consumed as invalidated-in-flight (the TSO-CC
        // analogue of MESI's IS_I).
        if (flag_in_flight && e.state == StIS && e.line != except_line)
            e.consumeFlagged = true;
    });
    for (Addr line : doomed) {
        table_.record(StS, EvSelfInvalidate);
        CacheEntry *e = array_.find(line);
        array_.free(*e);
        notifyLq(line);
        ++selfInvs_;
    }
}

// ---------------------------------------------------------------------
// Core interface.
// ---------------------------------------------------------------------

void
TsoccL1::coreLoad(ReqId id, Addr addr)
{
    enqueue({PendingReq::Kind::Load, id, addr, 0});
    processPending(lineAddr(addr));
}

void
TsoccL1::coreStore(ReqId id, Addr addr, WriteVal value)
{
    enqueue({PendingReq::Kind::Store, id, addr, value});
    processPending(lineAddr(addr));
}

void
TsoccL1::coreRmw(ReqId id, Addr addr, WriteVal value)
{
    enqueue({PendingReq::Kind::Rmw, id, addr, value});
    processPending(lineAddr(addr));
}

void
TsoccL1::coreFlush(ReqId id, Addr addr)
{
    enqueue({PendingReq::Kind::Flush, id, addr, 0});
    processPending(lineAddr(addr));
}

void
TsoccL1::enqueue(const PendingReq &req)
{
    pending_[lineAddr(req.addr)].push_back(req);
}

bool
TsoccL1::startMiss(Addr line, bool exclusive)
{
    CacheEntry *entry = array_.allocate(line);
    if (!entry) {
        if (!evictVictim(line))
            return false;
        entry = array_.allocate(line);
        assert(entry);
    }
    entry->state = exclusive ? StIM : StIS;
    array_.touch(*entry, eq_.now());
    send(exclusive ? MsgType::GETX : MsgType::GETS, line, home(line),
         Vnet::Request);
    return true;
}

bool
TsoccL1::evictVictim(Addr line)
{
    CacheEntry *victim = array_.victim(line, [](const CacheEntry &e) {
        return e.state == StS || e.state == StM;
    });
    if (!victim)
        return false;
    doReplacement(*victim);
    return true;
}

void
TsoccL1::doReplacement(CacheEntry &entry)
{
    const Addr line = entry.line;
    const auto st = static_cast<State>(entry.state);
    table_.record(st, EvReplacement);
    if (st == StS) {
        // Sharers are untracked: silent drop.
        notifyLq(line);
        array_.free(entry);
        return;
    }
    assert(st == StM);
    EvictBuf buf;
    buf.state = StMI;
    evict_[line] = buf;
    send(MsgType::PUTX, line, home(line), Vnet::Request, [&](Msg &m) {
        m.data = entry.data;
        m.hasData = true;
        m.dirty = true;
        m.meta = entry.meta;
    });
    notifyLq(line);
    array_.free(entry);
}

void
TsoccL1::processPending(Addr line)
{
    auto it = pending_.find(line);
    if (it == pending_.end())
        return;
    auto &q = it->second;

    while (!q.empty()) {
        if (evict_.count(line))
            return;

        const PendingReq req = q.front();
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StI;

        switch (st) {
          case StI:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                table_.record(StI, EvLoad);
                if (!startMiss(line, false)) {
                    eq_.scheduleFnIn(
                        16,
                        [](void *o, std::uint64_t a, std::uint64_t,
                           std::uint64_t, std::uint64_t) {
                            static_cast<TsoccL1 *>(o)->processPending(a);
                        },
                        this, line);
                    return;
                }
                return;
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw:
                table_.record(StI, req.kind == PendingReq::Kind::Rmw
                                       ? EvRmw
                                       : EvStore);
                if (!startMiss(line, true)) {
                    eq_.scheduleFnIn(
                        16,
                        [](void *o, std::uint64_t a, std::uint64_t,
                           std::uint64_t, std::uint64_t) {
                            static_cast<TsoccL1 *>(o)->processPending(a);
                        },
                        this, line);
                    return;
                }
                return;
              case PendingReq::Kind::Flush:
                table_.record(StI, EvFlush);
                respond(req.id, 0, 0, 1);
                q.pop_front();
                continue;
            }
            break;

          case StS:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                if (entry->accessesLeft <= 0) {
                    // Max-accesses exhausted: revalidate from L2. The
                    // local copy is dropped, so speculative consumers
                    // must be squashed.
                    table_.record(StS, EvLoadExpired);
                    notifyLq(line);
                    array_.free(*entry);
                    continue; // Re-dispatch as a miss.
                }
                table_.record(StS, EvLoad);
                entry->accessesLeft -= 1;
                array_.touch(*entry, eq_.now());
                respond(req.id, entry->data.word(req.addr), 0,
                        cfg_.l1HitLatency);
                q.pop_front();
                continue;
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw:
                table_.record(StS, req.kind == PendingReq::Kind::Rmw
                                       ? EvRmw
                                       : EvStore);
                // Drop the shared copy and fetch with ownership. The
                // drop invalidates data a speculative load to another
                // word of this line may already have consumed, so the
                // LQ must be notified like for any invalidation.
                notifyLq(line);
                array_.free(*entry);
                continue; // Re-dispatch: StI + Store -> GETX.
              case PendingReq::Kind::Flush:
                table_.record(StS, EvFlush);
                notifyLq(line);
                array_.free(*entry);
                respond(req.id, 0, 0, 1);
                q.pop_front();
                continue;
            }
            break;

          case StM:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                table_.record(StM, EvLoad);
                array_.touch(*entry, eq_.now());
                respond(req.id, entry->data.word(req.addr), 0,
                        cfg_.l1HitLatency);
                q.pop_front();
                continue;
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw: {
                table_.record(StM, req.kind == PendingReq::Kind::Rmw
                                       ? EvRmw
                                       : EvStore);
                array_.touch(*entry, eq_.now());
                if (req.kind == PendingReq::Kind::Rmw) {
                    // Atomic RMWs are full fences (acquire points):
                    // without sharer invalidations, TSO across a fence
                    // is only preserved if all Shared lines are
                    // self-invalidated here. Fences are rare, so
                    // flagging in-flight fills cannot self-sustain.
                    selfInvalidateShared(line, true);
                }
                const WriteVal old = entry->data.word(req.addr);
                entry->data.setWord(req.addr, req.value);
                stampWrite(*entry);
                if (req.kind == PendingReq::Kind::Rmw)
                    respond(req.id, old, old, cfg_.l1HitLatency);
                else
                    respond(req.id, 0, old, cfg_.l1HitLatency);
                q.pop_front();
                continue;
              }
              case PendingReq::Kind::Flush: {
                table_.record(StM, EvFlush);
                EvictBuf buf;
                buf.state = StMI;
                buf.flushPending = true;
                buf.flushReq = req.id;
                evict_[line] = buf;
                send(MsgType::PUTX, line, home(line), Vnet::Request,
                     [&](Msg &m) {
                         m.data = entry->data;
                         m.hasData = true;
                         m.dirty = true;
                         m.meta = entry->meta;
                     });
                notifyLq(line);
                array_.free(*entry);
                q.pop_front();
                return;
              }
            }
            break;

          case StIS:
          case StIM:
            return; // Wait for data.

          default:
            return;
        }
    }
    if (q.empty())
        pending_.erase(it);
}

// ---------------------------------------------------------------------
// Message handling.
// ---------------------------------------------------------------------

void
TsoccL1::handleMsg(const Msg &msg)
{
    const Addr line = msg.line;

    if (msg.type == MsgType::TsReset) {
        table_.record(StCtrl, EvTsReset);
        // A writer reset its timestamp: anything we later see from it
        // in the new epoch must be treated as unseen.
        Seen &seen = lastSeen_[static_cast<std::size_t>(msg.requester)];
        seen.valid = true;
        seen.epoch = msg.meta.epoch;
        seen.ts = 0;
        return;
    }

    if (auto it = evict_.find(line); it != evict_.end()) {
        EvictBuf &buf = it->second;
        const State st = buf.state;
        switch (msg.type) {
          case MsgType::Recall:
            table_.record(st, EvRecall);
            send(MsgType::RecallAckNoData, line, home(line),
                 Vnet::Response);
            buf.state = StII;
            // Re-notify the LQ: a squashed load may have re-bound this
            // line's data via store-buffer forwarding after the
            // eviction-time notification (see MesiL1::handleMsg).
            notifyLq(line);
            return;
          case MsgType::WbAck:
          case MsgType::WbNack: {
            table_.record(st, msg.type == MsgType::WbAck ? EvWbAck
                                                         : EvWbNack);
            const bool flush_pending = buf.flushPending;
            const ReqId flush_req = buf.flushReq;
            evict_.erase(it);
            if (flush_pending)
                respond(flush_req, 0, 0, 1);
            processPending(line);
            return;
          }
          default:
            table_.record(st, EvData); // Undefined: throws.
            return;
        }
    }

    CacheEntry *entry = array_.find(line);
    const State st = entry ? static_cast<State>(entry->state) : StI;

    switch (msg.type) {
      case MsgType::Data:
        table_.record(st, EvData);
        if (st == StIS) {
            if (entry->consumeFlagged) {
                // Stale fill (self-invalidation crossed it): consume
                // once, flagged, and do not install.
                auto pit = pending_.find(line);
                if (pit != pending_.end()) {
                    auto &q = pit->second;
                    for (auto qit = q.begin(); qit != q.end();) {
                        if (qit->kind == PendingReq::Kind::Load) {
                            eq_.scheduleFnIn(
                                1,
                                [](void *o, std::uint64_t a,
                                   std::uint64_t b, std::uint64_t,
                                   std::uint64_t) {
                                    auto *self =
                                        static_cast<TsoccL1 *>(o);
                                    self->hooks_.respond(
                                        CacheResp{a, b, 0, true});
                                },
                                this, qit->id,
                                msg.data.word(qit->addr));
                            qit = q.erase(qit);
                        } else {
                            ++qit;
                        }
                    }
                }
                array_.free(*entry);
                processPending(line);
                return;
            }
            entry->data = msg.data;
            entry->meta = msg.meta;
            entry->state = StS;
            entry->accessesLeft = cfg_.tsoccMaxAccesses;
            applySelfInvRule(msg.meta, line);
            processPending(line);
        } else { // StIM
            entry->data = msg.data;
            entry->meta = msg.meta;
            entry->state = StM;
            applySelfInvRule(msg.meta, line);
            send(MsgType::Unblock, line, home(line), Vnet::Request);
            processPending(line);
        }
        return;

      case MsgType::Recall:
        table_.record(st, EvRecall); // Only StM defined.
        send(MsgType::RecallData, line, home(line), Vnet::Response,
             [&](Msg &m) {
                 m.data = entry->data;
                 m.hasData = true;
                 m.dirty = true;
                 m.meta = entry->meta;
             });
        notifyLq(line);
        array_.free(*entry);
        processPending(line);
        return;

      default:
        throw ProtocolError("TSOCC-L1", kStateNames[st],
                            msgTypeName(msg.type));
    }
}

void
TsoccL1::resetAll()
{
    array_.reset();
    evict_.clear();
    pending_.clear();
    for (Seen &seen : lastSeen_)
        seen = Seen{};
    // Keep curTs_/curEpoch_: timestamps are global machine state, not
    // per-test state (the paper resets only test-related state).
    writesInGroup_ = 0;
}

} // namespace mcversi::sim
