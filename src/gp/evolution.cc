#include "gp/evolution.hh"

#include <algorithm>
#include <string>

#include "common/strict.hh"
#include "gp/selection.hh"

namespace mcversi::gp {

EvolutionEngine::EvolutionEngine(GaParams ga, GenParams gen,
                                 std::uint64_t seed, XoMode mode,
                                 EvolutionParams evo)
    : ga_(ga), gen_(gen), mode_(mode), evo_(evo),
      pool_(gen.testSize,
            /*slab_genomes=*/std::max<std::size_t>(
                16, (evo.islands > 0 ? evo.islands : 1) *
                        (ga.population + 1)))
{
    if (evo_.islands == 0)
        evo_.islands = 1;
    islands_.resize(evo_.islands);
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        // Counter-based per-island streams: stream 0 is the base seed,
        // so a single island reproduces SteadyStateGa(seed) exactly.
        islands_[i].rng = Rng(Rng::streamSeed(seed, i));
        islands_[i].pop.reserve(ga_.population);
    }
}

std::size_t
EvolutionEngine::tournamentSelect(Island &island)
{
    return gp::tournamentSelect(island.pop, ga_.tournamentSize,
                                island.rng);
}

void
EvolutionEngine::generateInto(Island &island, GenomePool::Slot slot)
{
    std::span<Node> child = pool_.nodes(slot);
    if (island.pop.size() < ga_.population) {
        // Still building this island's initial random population.
        gen_.randomTestInto(island.rng, child);
    } else if (!island.rng.boolWithProb(ga_.pCrossover)) {
        // Crossover probability < 1: clone-and-mutate a parent.
        const PoolIndividual &p = island.pop[tournamentSelect(island)];
        const std::span<const Node> parent = pool_.nodes(p.slot);
        std::copy(parent.begin(), parent.end(), child.begin());
        for (std::size_t i = 0; i < child.size(); ++i)
            if (island.rng.boolWithProb(ga_.pMut))
                child[i] = gen_.randomNode(island.rng);
    } else {
        const PoolIndividual &p1 = island.pop[tournamentSelect(island)];
        const PoolIndividual &p2 = island.pop[tournamentSelect(island)];
        if (mode_ == XoMode::Selective) {
            crossoverMutateInto(pool_.nodes(p1.slot), p1.nd,
                                pool_.nodes(p2.slot), p2.nd, gen_, ga_,
                                island.rng, child, fitUnionScratch_);
        } else {
            singlePointCrossoverMutateInto(pool_.nodes(p1.slot),
                                           pool_.nodes(p2.slot), gen_,
                                           ga_, island.rng, child);
        }
    }
}

void
EvolutionEngine::nextBatch(std::span<TestRef> out)
{
    checkApiContract(pending_.empty(),
                     "EvolutionEngine::nextBatch(): a batch is still "
                     "pending; call reportBatch() first");
    // Release-mode clamp: an abandoned batch returns its slots to the
    // pool instead of leaking them.
    for (const TestRef &ref : pending_)
        pool_.release(ref.slot);
    pending_.clear();
    pending_.reserve(out.size());
    for (std::size_t b = 0; b < out.size(); ++b) {
        const auto island_idx =
            static_cast<std::uint32_t>(issued_ % islands_.size());
        ++issued_;
        const GenomePool::Slot slot = pool_.acquire();
        generateInto(islands_[island_idx], slot);
        const TestRef ref{slot, island_idx};
        pending_.push_back(ref);
        out[b] = ref;
    }
}

void
EvolutionEngine::insertResult(const TestRef &ref, EvalResult &result)
{
    Island &island = islands_[ref.island];
    PoolIndividual member;
    member.slot = ref.slot;
    member.fitness = result.fitness;
    member.nd = std::move(result.nd);
    member.bornAt = island.births++;
    ++evaluated_;

    if (island.pop.size() < ga_.population) {
        island.pop.push_back(std::move(member));
        return;
    }
    // Delete-oldest replacement; the evicted genome slot is recycled.
    const auto oldest = oldestMember(island.pop);
    pool_.release(oldest->slot);
    *oldest = std::move(member);
}

void
EvolutionEngine::reportBatch(std::span<EvalResult> results)
{
    if (strictApiChecks() && results.size() != pending_.size()) {
        throw std::logic_error(
            "EvolutionEngine::reportBatch(): got " +
            std::to_string(results.size()) + " results for a pending "
            "batch of " + std::to_string(pending_.size()) +
            "; report exactly one result per emitted test");
    }
    const std::size_t n = std::min(results.size(), pending_.size());
    for (std::size_t i = 0; i < n; ++i)
        insertResult(pending_[i], results[i]);
    // Release any unreported pending slots (release-mode clamp only).
    for (std::size_t i = n; i < pending_.size(); ++i)
        pool_.release(pending_[i].slot);
    pending_.clear();

    if (evo_.migrationInterval > 0 && islands_.size() > 1) {
        while (evaluated_ - lastMigrationAt_ >= evo_.migrationInterval) {
            lastMigrationAt_ += evo_.migrationInterval;
            migrateOnce();
        }
    }
}

void
EvolutionEngine::migrateOnce()
{
    const std::size_t n = islands_.size();
    // Phase 1: stage a copy of every island's current best, before any
    // replacement -- the ring must read pre-migration state even when a
    // donor is also its island's oldest member.
    migrantScratch_.resize(n);
    migrantValid_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const Island &island = islands_[i];
        if (island.pop.empty())
            continue;
        std::size_t best = 0;
        for (std::size_t m = 1; m < island.pop.size(); ++m)
            if (island.pop[m].fitness > island.pop[best].fitness)
                best = m;
        const PoolIndividual &donor = island.pop[best];
        PoolIndividual &staged = migrantScratch_[i];
        staged.slot = pool_.acquire();
        const std::span<const Node> src = pool_.nodes(donor.slot);
        const std::span<Node> dst = pool_.nodes(staged.slot);
        std::copy(src.begin(), src.end(), dst.begin());
        staged.fitness = donor.fitness;
        staged.nd = donor.nd;
        migrantValid_[i] = true;
    }
    // Phase 2: deliver ring-wise, replacing each recipient's oldest.
    for (std::size_t i = 0; i < n; ++i) {
        if (!migrantValid_[i])
            continue;
        const std::size_t to = (i + 1) % n;
        Island &recipient = islands_[to];
        PoolIndividual &migrant = migrantScratch_[i];
        migrant.bornAt = recipient.births++;
        if (migrationLog_.size() < kMaxMigrationLog) {
            migrationLog_.push_back(
                {evaluated_, static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(to),
                 fingerprintNodes(pool_.nodes(migrant.slot))});
        }
        ++migrationCount_;
        if (recipient.pop.size() < ga_.population) {
            recipient.pop.push_back(std::move(migrant));
            continue;
        }
        const auto oldest = oldestMember(recipient.pop);
        pool_.release(oldest->slot);
        *oldest = std::move(migrant);
    }
}

double
EvolutionEngine::meanFitness() const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const Island &island : islands_) {
        for (const PoolIndividual &member : island.pop)
            sum += member.fitness;
        count += island.pop.size();
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double
EvolutionEngine::meanNdt() const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const Island &island : islands_) {
        for (const PoolIndividual &member : island.pop)
            sum += member.nd.ndt;
        count += island.pop.size();
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

} // namespace mcversi::gp
