#include "campaign/spec.hh"

#include <sstream>
#include <stdexcept>

#include "campaign/registry.hh"
#include "common/strings.hh"
#include "memconsistency/models/registry.hh"
#include "sim/bugs.hh"

namespace mcversi::campaign {

namespace {

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const std::string &why)
{
    throw std::invalid_argument("campaign spec: bad value '" + value +
                                "' for key '" + key + "': " + why);
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty() || value[0] == '-' || value[0] == '+')
        badValue(key, value, "expected a non-negative integer");
    std::size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(value, &pos, 0);
    } catch (const std::exception &) {
        badValue(key, value, "expected a non-negative integer");
    }
    if (pos != value.size())
        badValue(key, value, "trailing characters");
    return v;
}

/** Non-negative integer with an optional k/K (x1024) suffix. */
std::uint64_t
parseSize(const std::string &key, const std::string &value)
{
    if (!value.empty() &&
        (value.back() == 'k' || value.back() == 'K')) {
        return parseU64(key, value.substr(0, value.size() - 1)) * 1024;
    }
    return parseU64(key, value);
}

int
parsePositiveInt(const std::string &key, const std::string &value)
{
    const std::uint64_t v = parseU64(key, value);
    if (v == 0 || v > 1'000'000'000)
        badValue(key, value, "expected a positive integer");
    return static_cast<int>(v);
}

double
parseNonNegDouble(const std::string &key, const std::string &value)
{
    if (value.empty())
        badValue(key, value, "expected a non-negative number");
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::exception &) {
        badValue(key, value, "expected a non-negative number");
    }
    if (pos != value.size())
        badValue(key, value, "trailing characters");
    if (v < 0.0)
        badValue(key, value, "must not be negative");
    return v;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    const std::string v = asciiLowered(value);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    badValue(key, value, "expected a boolean (0/1/true/false)");
}

std::string
parseModel(const std::string &key, const std::string &value)
{
    const std::string v = asciiLowered(value);
    if (!mc::hasModel(v)) {
        badValue(key, value,
                 "registered models: " + mc::modelNamesJoined());
    }
    return v;
}

std::string
parseProtocol(const std::string &key, const std::string &value)
{
    const std::string v = asciiLowered(value);
    if (v == "auto")
        return "auto";
    if (v == "mesi")
        return "mesi";
    if (v == "tsocc" || v == "tso-cc")
        return "tsocc";
    badValue(key, value, "expected auto, mesi, or tsocc");
}

} // namespace

void
CampaignSpec::set(const std::string &key_value)
{
    const std::size_t eq = key_value.find('=');
    if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument(
            "campaign spec: expected key=value, got '" + key_value + "'");
    }
    set(key_value.substr(0, eq), key_value.substr(eq + 1));
}

void
CampaignSpec::set(const std::string &key, const std::string &value)
{
    const std::string k = asciiLowered(key);
    if (k == "bug") {
        bug = value;
    } else if (k == "generator") {
        generator = value;
    } else if (k == "seed") {
        seed = parseU64(key, value);
    } else if (k == "protocol") {
        protocol = parseProtocol(key, value);
    } else if (k == "model") {
        model = parseModel(key, value);
    } else if (k == "test-size") {
        testSize = static_cast<std::size_t>(
            parsePositiveInt(key, value));
    } else if (k == "iterations") {
        iterations = parsePositiveInt(key, value);
    } else if (k == "mem-size") {
        memSize = static_cast<Addr>(parseSize(key, value));
    } else if (k == "stride") {
        stride = static_cast<Addr>(parseSize(key, value));
    } else if (k == "guest-threads") {
        guestThreads = parsePositiveInt(key, value);
    } else if (k == "population") {
        population = static_cast<std::size_t>(
            parsePositiveInt(key, value));
    } else if (k == "islands") {
        islands = static_cast<std::size_t>(
            parsePositiveInt(key, value));
    } else if (k == "migration") {
        migration = parseU64(key, value);
    } else if (k == "batch") {
        batch = static_cast<std::size_t>(
            parsePositiveInt(key, value));
    } else if (k == "max-runs") {
        maxTestRuns = parseU64(key, value);
    } else if (k == "max-seconds") {
        maxWallSeconds = parseNonNegDouble(key, value);
    } else if (k == "litmus-iterations") {
        litmusIterations = parsePositiveInt(key, value);
    } else if (k == "record-ndt") {
        recordNdt = parseBool(key, value);
    } else if (k == "check-cache") {
        checkCache = asciiLowered(value) == "off"
                         ? 0
                         : static_cast<std::size_t>(
                               parseSize(key, value));
    } else if (k == "check-mode") {
        const std::string v = asciiLowered(value);
        if (v != "posthoc" && v != "streaming")
            badValue(key, value, "expected posthoc or streaming");
        checkMode = v;
    } else if (k == "witness-window") {
        witnessWindow = asciiLowered(value) == "off"
                            ? 0
                            : static_cast<std::size_t>(
                                  parseSize(key, value));
    } else {
        throw std::invalid_argument("campaign spec: unknown key '" + key +
                                    "'");
    }
}

CampaignSpec
CampaignSpec::fromString(const std::string &text)
{
    std::istringstream in(text);
    std::vector<std::string> args;
    for (std::string token; in >> token;)
        args.push_back(token);
    return fromArgs(args);
}

CampaignSpec
CampaignSpec::fromArgs(const std::vector<std::string> &args)
{
    CampaignSpec spec;
    for (const std::string &arg : args)
        spec.set(arg);
    return spec;
}

std::string
CampaignSpec::toString() const
{
    std::ostringstream out;
    out << "bug=" << bug
        << " generator=" << generator
        << " seed=" << seed
        << " protocol=" << protocol
        << " model=" << model
        << " test-size=" << testSize
        << " iterations=" << iterations
        << " mem-size=" << memSize
        << " stride=" << stride
        << " guest-threads=" << guestThreads
        << " population=" << population
        << " islands=" << islands
        << " migration=" << migration
        << " batch=" << batch
        << " max-runs=" << maxTestRuns
        << " max-seconds=" << maxWallSeconds
        << " litmus-iterations=" << litmusIterations
        << " record-ndt=" << (recordNdt ? 1 : 0)
        << " check-cache=" << checkCache
        << " check-mode=" << checkMode
        << " witness-window=" << witnessWindow;
    return out.str();
}

void
CampaignSpec::validate() const
{
    if (sim::findBugByName(bug) == nullptr) {
        throw std::invalid_argument("campaign spec: unknown bug '" + bug +
                                    "'");
    }
    if (!SourceRegistry::instance().has(generator)) {
        throw std::invalid_argument(
            "campaign spec: unknown generator '" + generator + "'");
    }
    // Directly-assigned protocol strings bypass set()'s normalization;
    // reject anything resolvedProtocol() would silently fall through.
    if (protocol != "auto" && protocol != "mesi" &&
        protocol != "tsocc") {
        throw std::invalid_argument(
            "campaign spec: protocol must be auto, mesi, or tsocc "
            "(got '" + protocol + "')");
    }
    // Directly-assigned model strings likewise bypass set().
    if (!mc::hasModel(model)) {
        throw std::invalid_argument(
            "campaign spec: unknown model '" + model +
            "' for key 'model' (registered models: " +
            mc::modelNamesJoined() + ")");
    }
    if (stride == 0 || memSize == 0 || memSize % stride != 0) {
        throw std::invalid_argument(
            "campaign spec: mem-size must be a positive multiple of "
            "stride");
    }
    const sim::SystemConfig system{};
    if (guestThreads > system.numCores) {
        throw std::invalid_argument(
            "campaign spec: guest-threads exceeds the simulated core "
            "count");
    }
    if (maxTestRuns == 0 && maxWallSeconds == 0.0) {
        throw std::invalid_argument(
            "campaign spec: unbounded budget (set max-runs and/or "
            "max-seconds)");
    }
    if (islands == 0 || batch == 0) {
        throw std::invalid_argument(
            "campaign spec: islands and batch must be positive");
    }
    if (usesParallelHarness() &&
        SourceRegistry::instance().isLitmus(generator)) {
        throw std::invalid_argument(
            "campaign spec: litmus generators run the serial litmus "
            "loop; islands/batch do not apply (keep both at 1)");
    }
    if (islands > 64) {
        throw std::invalid_argument(
            "campaign spec: islands capped at 64 (each island owns a "
            "full simulated system)");
    }
    if (batch > 4096) {
        throw std::invalid_argument(
            "campaign spec: batch capped at 4096");
    }
    if (checkCache > (std::size_t{1} << 22)) {
        throw std::invalid_argument(
            "campaign spec: check-cache capped at 4M entries per "
            "checker");
    }
    // Directly-assigned check-mode strings bypass set().
    if (checkMode != "posthoc" && checkMode != "streaming") {
        throw std::invalid_argument(
            "campaign spec: check-mode must be posthoc or streaming "
            "(got '" + checkMode + "')");
    }
    if (witnessWindow != 0 && checkMode != "streaming") {
        throw std::invalid_argument(
            "campaign spec: witness-window requires "
            "check-mode=streaming (post-hoc checking needs the whole "
            "event log)");
    }
    if (witnessWindow != 0 && witnessWindow < 64) {
        throw std::invalid_argument(
            "campaign spec: witness-window below 64 events cannot hold "
            "one iteration's in-flight accesses (use off/0 for "
            "unbounded)");
    }
    if (witnessWindow > (std::size_t{1} << 26)) {
        throw std::invalid_argument(
            "campaign spec: witness-window capped at 64M events");
    }
}

sim::Protocol
CampaignSpec::resolvedProtocol() const
{
    if (protocol == "mesi")
        return sim::Protocol::Mesi;
    if (protocol == "tsocc")
        return sim::Protocol::Tsocc;
    const sim::BugInfo *info = sim::findBugByName(bug);
    if (info != nullptr && info->protocol == sim::ProtocolKind::Tsocc)
        return sim::Protocol::Tsocc;
    return sim::Protocol::Mesi;
}

const char *
CampaignSpec::protocolPrefix() const
{
    return resolvedProtocol() == sim::Protocol::Tsocc ? "TSOCC" : "MESI";
}

sim::SystemConfig
CampaignSpec::systemConfig() const
{
    sim::SystemConfig config;
    config.protocol = resolvedProtocol();
    const sim::BugInfo *info = sim::findBugByName(bug);
    config.bug = info != nullptr ? info->id : sim::BugId::None;
    config.seed = seed;
    return config;
}

gp::GenParams
CampaignSpec::genParams() const
{
    gp::GenParams gen;
    gen.testSize = testSize;
    gen.iterations = iterations;
    gen.numThreads = guestThreads;
    gen.memSize = memSize;
    gen.stride = stride;
    return gen;
}

gp::GaParams
CampaignSpec::gaParams() const
{
    gp::GaParams ga;
    ga.population = population;
    return ga;
}

gp::EvolutionParams
CampaignSpec::evolutionParams() const
{
    gp::EvolutionParams evo;
    evo.islands = islands;
    evo.migrationInterval = migration;
    return evo;
}

host::Budget
CampaignSpec::budget() const
{
    host::Budget budget;
    budget.maxTestRuns = maxTestRuns;
    budget.maxWallSeconds = maxWallSeconds;
    return budget;
}

host::VerificationHarness::Params
CampaignSpec::harnessParams() const
{
    host::VerificationHarness::Params params;
    params.system = systemConfig();
    params.gen = genParams();
    params.workload.iterations = iterations;
    params.workload.checkMode = mc::parseCheckMode(checkMode);
    params.workload.witnessWindow = witnessWindow;
    params.model = model;
    params.recordNdt = recordNdt;
    params.checkCacheEntries = checkCache;
    return params;
}

std::vector<CampaignSpec>
CampaignMatrix::expand() const
{
    const std::vector<std::string> bug_list =
        bugs.empty() ? std::vector<std::string>{base.bug} : bugs;
    const std::vector<std::string> gen_list =
        generators.empty() ? std::vector<std::string>{base.generator}
                           : generators;
    const std::vector<std::string> model_list =
        models.empty() ? std::vector<std::string>{base.model} : models;
    const std::vector<std::uint64_t> seed_list =
        seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;

    std::vector<CampaignSpec> specs;
    specs.reserve(bug_list.size() * gen_list.size() *
                  model_list.size() * seed_list.size());
    for (const std::string &bug : bug_list) {
        for (const std::string &generator : gen_list) {
            for (const std::string &model : model_list) {
                for (const std::uint64_t seed : seed_list) {
                    CampaignSpec spec = base;
                    spec.bug = bug;
                    spec.generator = generator;
                    spec.model = model;
                    spec.seed = seed;
                    specs.push_back(std::move(spec));
                }
            }
        }
    }
    return specs;
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> items;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, sep)) {
        if (!item.empty())
            items.push_back(item);
    }
    return items;
}

std::vector<std::uint64_t>
parseSeedList(const std::string &text)
{
    const std::size_t dots = text.find("..");
    if (dots != std::string::npos) {
        const std::uint64_t lo =
            parseU64("seeds", text.substr(0, dots));
        const std::uint64_t hi =
            parseU64("seeds", text.substr(dots + 2));
        if (hi < lo)
            badValue("seeds", text, "range end below range start");
        if (hi - lo >= 1'000'000)
            badValue("seeds", text, "range too large");
        std::vector<std::uint64_t> seeds;
        seeds.reserve(hi - lo + 1);
        for (std::uint64_t s = lo; s <= hi; ++s)
            seeds.push_back(s);
        return seeds;
    }
    std::vector<std::uint64_t> seeds;
    for (const std::string &item : splitList(text))
        seeds.push_back(parseU64("seeds", item));
    if (seeds.empty())
        badValue("seeds", text, "empty seed list");
    return seeds;
}

int
parseThreadCount(const std::string &key, const std::string &value)
{
    const std::uint64_t v = parseU64(key, value);
    if (v < 1)
        badValue(key, value,
                 "expected at least 1 worker thread (omit the key for "
                 "hardware concurrency)");
    if (v > 4096)
        badValue(key, value, "at most 4096 worker threads");
    return static_cast<int>(v);
}

std::vector<std::string>
resolveBugList(const std::string &token)
{
    const std::string t = asciiLowered(token);
    if (t == "all" || t == "mesi" || t == "tsocc" || t == "tso-cc") {
        std::vector<std::string> names;
        for (const sim::BugInfo &info : sim::allBugs()) {
            const bool match =
                t == "all" ||
                info.protocol == sim::ProtocolKind::Any ||
                (t == "mesi"
                     ? info.protocol == sim::ProtocolKind::Mesi
                     : info.protocol == sim::ProtocolKind::Tsocc);
            if (match)
                names.emplace_back(info.name);
        }
        return names;
    }
    return splitList(token);
}

} // namespace mcversi::campaign
