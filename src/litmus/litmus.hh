/**
 * @file
 * Litmus tests: short, self-checking MCM tests (§5.2.2).
 *
 * A litmus test is a tiny multi-threaded program plus a *forbidden*
 * final condition. Unlike McVerSi's checker-based verification, litmus
 * tests detect bugs only when the forbidden outcome is actually
 * observed -- they are self-checking, which makes them portable but
 * blind to anything their condition does not mention.
 *
 * Conditions are conjunctions of atoms over the observed conflict
 * orders, expressed against static (thread, program-order-slot) event
 * coordinates so they are oblivious to the unique write values the
 * simulator assigns.
 */

#ifndef MCVERSI_LITMUS_LITMUS_HH
#define MCVERSI_LITMUS_LITMUS_HH

#include <string>
#include <vector>

#include "gp/test.hh"
#include "memconsistency/execwitness.hh"

namespace mcversi::litmus {

/** One conjunct of a litmus final condition. */
struct CondAtom
{
    enum class Kind : std::uint8_t {
        /** read (pid, slot) reads from write (otherPid, otherSlot). */
        ReadsFrom,
        /** read (pid, slot) reads the initial value. */
        ReadsInit,
        /**
         * read (pid, slot) reads a write strictly co-before
         * (otherPid, otherSlot) -- the observable form of an fr edge.
         */
        ReadsBefore,
        /** write (pid, slot) is co-before write (otherPid, otherSlot). */
        CoBefore,
    };

    Kind kind = Kind::ReadsFrom;
    Pid pid = 0;
    int slot = 0; ///< program-order index within the thread
    Pid otherPid = 0;
    int otherSlot = 0;
};

/** A complete litmus test. */
struct LitmusTest
{
    std::string name;
    /** Flat gene list; per-thread order is list order (like gp tests). */
    gp::Test test;
    int numThreads = 2;
    int numAddrs = 2;
    /** Conjunction; observed together => forbidden outcome. */
    std::vector<CondAtom> forbidden;
    /**
     * For unrolled tests: one conjunction per instance; observing any
     * alternative is the forbidden outcome. Empty => use `forbidden`.
     */
    std::vector<std::vector<CondAtom>> forbiddenAlternatives;
};

/**
 * Evaluate the forbidden condition against one iteration's witness.
 *
 * @return true iff every atom of some alternative holds
 */
bool evalForbidden(const LitmusTest &test, const mc::ExecWitness &ew);

/**
 * Replicate a litmus test body @p instances times, each instance on its
 * own set of variables (the litmus "-s size" array idiom: running many
 * instances back-to-back lets thread timing drift open the racy windows
 * that a single aligned instance never exhibits). The forbidden outcome
 * becomes a disjunction over instances.
 *
 * @param block_stride byte distance between instances' variable blocks
 */
LitmusTest unroll(const LitmusTest &test, int instances,
                  Addr block_stride);

/** Find the event of (pid, slot) with the wanted type; kNoEvent if absent. */
mc::EventId findEvent(const mc::ExecWitness &ew, Pid pid, int slot,
                      bool want_write);

} // namespace mcversi::litmus

#endif // MCVERSI_LITMUS_LITMUS_HH
