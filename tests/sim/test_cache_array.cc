/** @file Set-associative cache array tests. */

#include <gtest/gtest.h>

#include "sim/cache_array.hh"

using namespace mcversi::sim;
using mcversi::Addr;
using mcversi::kLineBytes;

namespace {

/** Addresses mapping to the same set of a 4-set array. */
Addr
sameSetAddr(int k)
{
    return static_cast<Addr>(k) * 4 * kLineBytes;
}

} // namespace

TEST(CacheArray, FindMissOnEmpty)
{
    CacheArray arr(4, 2);
    EXPECT_EQ(arr.find(0x0), nullptr);
}

TEST(CacheArray, AllocateAndFind)
{
    CacheArray arr(4, 2);
    CacheEntry *e = arr.allocate(0x40);
    ASSERT_NE(e, nullptr);
    e->state = 3;
    CacheEntry *f = arr.find(0x40);
    ASSERT_EQ(f, e);
    EXPECT_EQ(f->state, 3);
}

TEST(CacheArray, SetConflictsExhaustWays)
{
    CacheArray arr(4, 2);
    EXPECT_NE(arr.allocate(sameSetAddr(0)), nullptr);
    EXPECT_NE(arr.allocate(sameSetAddr(1)), nullptr);
    EXPECT_EQ(arr.allocate(sameSetAddr(2)), nullptr)
        << "set full: allocation must fail";
    // A different set still has room.
    EXPECT_NE(arr.allocate(sameSetAddr(0) + kLineBytes), nullptr);
}

TEST(CacheArray, VictimPicksLruAmongEvictable)
{
    CacheArray arr(4, 2);
    CacheEntry *a = arr.allocate(sameSetAddr(0));
    CacheEntry *b = arr.allocate(sameSetAddr(1));
    a->state = 1;
    b->state = 1;
    arr.touch(*a, 100);
    arr.touch(*b, 50);
    CacheEntry *v = arr.victim(sameSetAddr(2),
                               [](const CacheEntry &) { return true; });
    EXPECT_EQ(v, b) << "older lastUse must be chosen";
}

TEST(CacheArray, VictimRespectsPredicate)
{
    CacheArray arr(4, 2);
    CacheEntry *a = arr.allocate(sameSetAddr(0));
    CacheEntry *b = arr.allocate(sameSetAddr(1));
    a->state = 7; // "transient"
    b->state = 1;
    CacheEntry *v =
        arr.victim(sameSetAddr(2), [](const CacheEntry &e) {
            return e.state == 1;
        });
    EXPECT_EQ(v, b);
    b->state = 7;
    EXPECT_EQ(arr.victim(sameSetAddr(2),
                         [](const CacheEntry &e) {
                             return e.state == 1;
                         }),
              nullptr);
}

TEST(CacheArray, FreeMakesWayAvailable)
{
    CacheArray arr(1, 1);
    CacheEntry *e = arr.allocate(0x0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(arr.allocate(kLineBytes), nullptr);
    arr.free(*e);
    EXPECT_EQ(arr.find(0x0), nullptr);
    EXPECT_NE(arr.allocate(kLineBytes), nullptr);
}

TEST(CacheArray, ResetDropsEverything)
{
    CacheArray arr(4, 2);
    arr.allocate(0x0);
    arr.allocate(0x40);
    arr.reset();
    EXPECT_EQ(arr.find(0x0), nullptr);
    EXPECT_EQ(arr.find(0x40), nullptr);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray arr(4, 2);
    arr.allocate(0x0);
    arr.allocate(0x40);
    arr.allocate(0x80);
    int count = 0;
    arr.forEachValid([&](CacheEntry &) { ++count; });
    EXPECT_EQ(count, 3);
}

TEST(CacheArray, LineDataWordAccess)
{
    LineData data;
    data.setWord(0x108, 77); // word 1 of its line
    EXPECT_EQ(data.word(0x108), 77u);
    EXPECT_EQ(data.word(0x100), 0u);
    EXPECT_EQ(data.words[1], 77u);
}

TEST(CacheArray, ClearMetaKeepsTag)
{
    CacheEntry e;
    e.line = 0x40;
    e.sharers = 5;
    e.owner = 2;
    e.dirty = true;
    e.clearMeta();
    EXPECT_EQ(e.line, 0x40u);
    EXPECT_EQ(e.sharers, 0u);
    EXPECT_EQ(e.owner, mcversi::kInitPid);
    EXPECT_FALSE(e.dirty);
}
