/**
 * @file
 * §4 companion: host-assisted barrier ablation.
 *
 * The paper found the host-assisted precise barrier to be "a mandatory
 * pre-requisite to execute very short tests": a guest software barrier
 * induces start offsets and setup overhead so large that short tests
 * lose their raciness and throughput collapses. This bench compares
 * host-assisted (skew <= 2 cycles, no overhead) against a modelled
 * guest barrier (hundreds of cycles of skew + per-iteration setup),
 * reporting simulated cycles per iteration and the mean NDT the same
 * tests achieve.
 */

#include "bench_common.hh"

using namespace mcvbench;

namespace {

struct AblationResult
{
    double ticksPerIteration = 0.0;
    double meanNdt = 0.0;
};

AblationResult
runMode(Tick skew, Tick overhead, std::uint64_t runs)
{
    sim::SystemConfig cfg;
    cfg.seed = 99;
    sim::System system(cfg);
    mc::Checker checker(mc::makeTso());

    gp::GenParams gen;
    gen.testSize = 96; // very short tests: the case the paper targets
    gen.iterations = 4;
    gen.memSize = 1024;

    host::Workload::Params wl;
    wl.iterations = gen.iterations;
    wl.barrierSkew = skew;
    wl.guestOverhead = overhead;
    host::Workload workload(system, checker, host::layoutFor(gen), wl);

    gp::RandomTestGen rtg(gen);
    Rng rng(5);

    AblationResult out;
    std::uint64_t iterations = 0;
    double ndt_sum = 0.0;
    std::uint64_t ticks = 0;
    for (std::uint64_t i = 0; i < runs; ++i) {
        host::RunResult r = workload.runTest(rtg.randomTest(rng));
        iterations += static_cast<std::uint64_t>(r.iterationsRun);
        ticks += r.simTicks;
        ndt_sum += r.nd.ndt;
    }
    out.ticksPerIteration =
        static_cast<double>(ticks) / static_cast<double>(iterations);
    out.meanNdt = ndt_sum / static_cast<double>(runs);
    return out;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const auto runs = static_cast<std::uint64_t>(40 * scale);

    std::printf("Barrier ablation (96-op tests, %llu test-runs "
                "per mode):\n\n",
                static_cast<unsigned long long>(runs));
    std::printf("%-28s | %-20s | %s\n", "Barrier",
                "sim cycles/iteration", "mean NDT");

    const AblationResult host_barrier = runMode(2, 0, runs);
    std::printf("%-28s | %-20.0f | %.2f\n",
                "host-assisted precise", host_barrier.ticksPerIteration,
                host_barrier.meanNdt);

    const AblationResult guest_small = runMode(300, 500, runs);
    std::printf("%-28s | %-20.0f | %.2f\n", "guest barrier (moderate)",
                guest_small.ticksPerIteration, guest_small.meanNdt);

    const AblationResult guest_big = runMode(2000, 5000, runs);
    std::printf("%-28s | %-20.0f | %.2f\n", "guest barrier (heavy)",
                guest_big.ticksPerIteration, guest_big.meanNdt);

    std::printf("\nslowdown vs host-assisted: %.1fx (moderate), "
                "%.1fx (heavy)\n",
                guest_small.ticksPerIteration /
                    host_barrier.ticksPerIteration,
                guest_big.ticksPerIteration /
                    host_barrier.ticksPerIteration);
    std::printf("Expectation: large skew dilutes overlap between "
                "threads (lower NDT) and inflates cycles/iteration.\n");
    return 0;
}
