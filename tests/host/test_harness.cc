/** @file Verification harness + test source tests. */

#include <gtest/gtest.h>

#include "host/harness.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

VerificationHarness::Params
smallParams(sim::BugId bug)
{
    VerificationHarness::Params p;
    p.system.bug = bug;
    p.system.seed = 5;
    p.gen.testSize = 96;
    p.gen.iterations = 3;
    p.gen.memSize = 1024;
    p.workload.iterations = 3;
    return p;
}

gp::GaParams
smallGa()
{
    gp::GaParams ga;
    ga.population = 20;
    return ga;
}

} // namespace

TEST(Harness, BudgetByTestRunsRespected)
{
    auto params = smallParams(sim::BugId::None);
    RandomSource source(params.gen, 1);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 5;
    HarnessResult result = harness.run(budget);
    EXPECT_FALSE(result.bugFound);
    EXPECT_EQ(result.testRuns, 5u);
    EXPECT_EQ(result.ndtHistory.size(), 5u);
    EXPECT_GT(result.totalCoverage, 0.0);
}

TEST(Harness, InterruptHookStopsTheRunEarly)
{
    auto params = smallParams(sim::BugId::None);
    RandomSource source(params.gen, 1);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 100;

    // Already-pending interrupt: not a single test runs (this is what
    // lets a fleet worker drain on SIGTERM without emitting a partial
    // -- therefore nondeterministic -- result).
    budget.interrupted = [] { return true; };
    HarnessResult none = harness.run(budget);
    EXPECT_EQ(none.testRuns, 0u);

    // Interrupt tripped mid-run: stops at the next run boundary.
    int calls = 0;
    budget.interrupted = [&calls] { return ++calls > 3; };
    VerificationHarness harness2(params, source);
    HarnessResult some = harness2.run(budget);
    EXPECT_GT(some.testRuns, 0u);
    EXPECT_LT(some.testRuns, 100u);
}

TEST(Harness, FindsEasyBugAndStops)
{
    auto params = smallParams(sim::BugId::LqNoTso);
    RandomSource source(params.gen, 2);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 400;
    HarnessResult result = harness.run(budget);
    EXPECT_TRUE(result.bugFound);
    EXPECT_GT(result.testRunsToBug, 0u);
    EXPECT_LE(result.testRunsToBug, result.testRuns);
    EXPECT_FALSE(result.detail.empty());
}

TEST(Harness, GaSourceImprovesOrMatchesAndTracksNdt)
{
    auto params = smallParams(sim::BugId::None);
    GaSource source(smallGa(), params.gen, 3,
                    gp::SteadyStateGa::XoMode::Selective);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 30;
    HarnessResult result = harness.run(budget);
    EXPECT_EQ(result.testRuns, 30u);
    EXPECT_GT(source.engine().evaluated(), 0u);
    EXPECT_GT(source.engine().meanNdt(), 0.0);
    EXPECT_TRUE(source.hasFitnessMetrics());
    EXPECT_EQ(result.meanFitness, source.meanFitness());
}

TEST(Harness, SourceNames)
{
    gp::GenParams gen;
    RandomSource rnd(gen, 1);
    EXPECT_EQ(rnd.name(), "McVerSi-RAND");
    GaSource all(smallGa(), gen, 1, gp::SteadyStateGa::XoMode::Selective);
    EXPECT_EQ(all.name(), "McVerSi-ALL");
    GaSource xo(smallGa(), gen, 1,
                gp::SteadyStateGa::XoMode::SinglePoint);
    EXPECT_EQ(xo.name(), "McVerSi-Std.XO");
}

TEST(Harness, WallClockBudget)
{
    auto params = smallParams(sim::BugId::None);
    RandomSource source(params.gen, 4);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxWallSeconds = 0.3;
    HarnessResult result = harness.run(budget);
    EXPECT_FALSE(result.bugFound);
    EXPECT_GT(result.testRuns, 0u);
    EXPECT_GE(result.wallSeconds, 0.3);
}

TEST(Harness, RunOneBuildingBlock)
{
    auto params = smallParams(sim::BugId::None);
    RandomSource source(params.gen, 5);
    VerificationHarness harness(params, source);
    gp::RandomTestGen rtg(params.gen);
    Rng rng(5);
    RunResult r = harness.runOne(rtg.randomTest(rng));
    EXPECT_FALSE(r.bugDetected());
    EXPECT_EQ(r.iterationsRun, 3);
}

TEST(Harness, StatsAccumulate)
{
    auto params = smallParams(sim::BugId::None);
    RandomSource source(params.gen, 6);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 3;
    HarnessResult result = harness.run(budget);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.eventsExecuted, 0u);
    EXPECT_GT(result.checkSeconds, 0.0);
}

TEST(Harness, VerdictCacheStatsAndIdenticalOutcomes)
{
    auto params = smallParams(sim::BugId::None);
    ASSERT_GT(params.checkCacheEntries, 0u); // collective checking on

    RandomSource cached_src(params.gen, 7);
    VerificationHarness cached(params, cached_src);
    Budget budget;
    budget.maxTestRuns = 8;
    const HarnessResult with_cache = cached.run(budget);

    auto off = params;
    off.checkCacheEntries = 0;
    RandomSource plain_src(off.gen, 7);
    VerificationHarness plain(off, plain_src);
    const HarnessResult without = plain.run(budget);

    // Memoization must not change any deterministic outcome.
    EXPECT_EQ(with_cache.bugFound, without.bugFound);
    EXPECT_EQ(with_cache.testRuns, without.testRuns);
    EXPECT_EQ(with_cache.simTicks, without.simTicks);
    EXPECT_EQ(with_cache.eventsExecuted, without.eventsExecuted);
    EXPECT_EQ(with_cache.ndtHistory, without.ndtHistory);
    EXPECT_EQ(with_cache.totalCoverage, without.totalCoverage);
    EXPECT_EQ(with_cache.meanFitness, without.meanFitness);

    // Telemetry flows through: every iteration consulted the cache and
    // the distinct-class counter is bounded by the miss count (each
    // new class is first a miss).
    EXPECT_GT(with_cache.checkCacheHits + with_cache.checkCacheMisses,
              0u);
    EXPECT_GT(with_cache.distinctInterleavings, 0u);
    EXPECT_LE(with_cache.distinctInterleavings,
              with_cache.checkCacheMisses);

    // With the cache off, the metrics stay zero.
    EXPECT_EQ(without.checkCacheHits, 0u);
    EXPECT_EQ(without.checkCacheMisses, 0u);
    EXPECT_EQ(without.distinctInterleavings, 0u);
    EXPECT_DOUBLE_EQ(without.checkCacheHitRate(), 0.0);
}
