/**
 * @file
 * Fleet coordinator end-to-end: the multi-process campaign must be a
 * pure robustness wrapper -- for ANY worker count, kill schedule,
 * timeout, retry, or resume split, the merged timing-free summary is
 * byte-identical to the single-process CampaignRunner's. The tests
 * exercise the real failure paths: SIGKILLed workers, hanging cells
 * (via the worker's env-var test hook), retry exhaustion degrading to
 * an error row, journal duplicates, and matrix-mismatch rejection.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "campaign/runner.hh"
#include "fleet/coordinator.hh"
#include "fleet/journal.hh"
#include "fleet/wire.hh"

using namespace mcversi;
using namespace mcversi::fleet;

namespace {

/** Fresh run directory per test (removed up front, not after, so a
 * failing test leaves its journal behind for inspection). */
std::string
makeRunDir(const std::string &name)
{
    std::string dir = "/tmp/mcversi_fleet_test_" + name + "_" +
                      std::to_string(static_cast<unsigned long>(
                          ::getpid()));
    std::filesystem::remove_all(dir);
    return dir;
}

/** Small-but-real 4-cell matrix (idiom of test_campaign_runner.cc). */
std::vector<campaign::CampaignSpec>
smallMatrix()
{
    campaign::CampaignMatrix matrix;
    matrix.base.testSize = 64;
    matrix.base.iterations = 2;
    matrix.base.memSize = 1024;
    matrix.base.population = 8;
    matrix.base.maxTestRuns = 3;
    matrix.bugs = {"SQ+no-FIFO", "none"};
    matrix.generators = {"McVerSi-RAND"};
    matrix.seeds = {1, 2};
    return matrix.expand();
}

/** The single-process reference summary the fleet must reproduce. */
const campaign::CampaignSummary &
referenceSummary()
{
    static const campaign::CampaignSummary summary = [] {
        campaign::CampaignRunner::Options options;
        options.threads = 1;
        return campaign::CampaignRunner(options).run(smallMatrix());
    }();
    return summary;
}

/** RAII env var for the worker's hang test hook. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

} // namespace

TEST(Fleet, MatchesTheInProcessRunnerByteForByte)
{
    const auto specs = smallMatrix();
    const std::string expected = referenceSummary().toJson(false);

    for (const int workers : {1, 3}) {
        FleetCoordinator::Options options;
        options.workers = workers;
        options.runDir =
            makeRunDir("identity_w" + std::to_string(workers));
        FleetReport report = FleetCoordinator(options).run(specs);

        EXPECT_FALSE(report.interrupted);
        EXPECT_EQ(report.cellsTotal, specs.size());
        EXPECT_EQ(report.cellsRun, specs.size());
        EXPECT_EQ(report.cellErrors, 0u);
        EXPECT_EQ(report.summary.toJson(false), expected)
            << "workers=" << workers;
        EXPECT_EQ(report.summary.toCsv(false),
                  referenceSummary().toCsv(false));
    }
}

TEST(Fleet, ResumeContinuesASlicedRunToTheIdenticalSummary)
{
    const auto specs = smallMatrix();
    const std::string dir = makeRunDir("resume");

    // First run stops cleanly after 2 cells (a stand-in for SIGTERM:
    // the same journal-then-stop path).
    FleetCoordinator::Options first;
    first.workers = 2;
    first.runDir = dir;
    first.maxCells = 2;
    FleetReport half = FleetCoordinator(first).run(specs);
    EXPECT_TRUE(half.interrupted);
    // In-flight cells drain when the slice trips, so 2 or 3 complete.
    EXPECT_GE(half.cellsRun, 2u);
    EXPECT_LT(half.cellsRun, specs.size());
    // Unfinished cells surface as resumable error rows, not silence.
    EXPECT_EQ(half.summary.campaigns(), specs.size());

    // Without resume=1 the journal refuses to be overwritten.
    FleetCoordinator::Options blocked;
    blocked.workers = 1;
    blocked.runDir = dir;
    EXPECT_THROW(FleetCoordinator(blocked).run(specs), FleetError);

    // Resume runs only the missing cells...
    FleetCoordinator::Options second;
    second.workers = 2;
    second.runDir = dir;
    second.resume = true;
    FleetReport full = FleetCoordinator(second).run(specs);
    EXPECT_FALSE(full.interrupted);
    EXPECT_EQ(full.cellsResumed, half.cellsRun);
    EXPECT_EQ(full.cellsRun, specs.size() - half.cellsRun);
    // ...and the stitched summary is byte-identical to one-shot.
    EXPECT_EQ(full.summary.toJson(false),
              referenceSummary().toJson(false));

    // Resuming a COMPLETE journal runs nothing and still matches.
    FleetReport again = FleetCoordinator(second).run(specs);
    EXPECT_EQ(again.cellsResumed, specs.size());
    EXPECT_EQ(again.cellsRun, 0u);
    EXPECT_EQ(again.summary.toJson(false),
              referenceSummary().toJson(false));
}

TEST(Fleet, SigkilledWorkersAreReplacedWithoutChangingTheSummary)
{
    const auto specs = smallMatrix();

    FleetCoordinator::Options options;
    options.workers = 2;
    options.runDir = makeRunDir("kill");
    std::vector<pid_t> initial;
    options.onWorkerSpawn = [&initial](int, pid_t pid) {
        if (initial.size() < 2)
            initial.push_back(pid);
    };
    bool killed = false;
    options.onResult = [&](const campaign::CampaignResult &,
                           std::size_t, std::size_t) {
        if (killed)
            return;
        killed = true;
        // First durable result: SIGKILL the whole initial pool. Any
        // in-flight cell must be retried on replacement workers.
        for (const pid_t pid : initial)
            ::kill(pid, SIGKILL);
    };
    FleetReport report = FleetCoordinator(options).run(specs);

    EXPECT_TRUE(killed);
    EXPECT_GE(report.workerCrashes, 1u);
    EXPECT_GE(report.respawns, 1u);
    EXPECT_EQ(report.cellErrors, 0u);
    EXPECT_EQ(report.summary.toJson(false),
              referenceSummary().toJson(false));
}

TEST(Fleet, HangingCellTimesOutAndSucceedsOnRetry)
{
    const auto specs = smallMatrix();
    // Cell 0 hangs forever on attempt 1, then behaves.
    ScopedEnv hang("MCVERSI_FLEET_TEST_HANG_CELL", "0");
    ScopedEnv max_attempt("MCVERSI_FLEET_TEST_HANG_MAX_ATTEMPT", "1");

    FleetCoordinator::Options options;
    options.workers = 2;
    options.runDir = makeRunDir("hang_retry");
    options.cellTimeoutSeconds = 3.0;
    FleetReport report = FleetCoordinator(options).run(specs);

    EXPECT_GE(report.timeouts, 1u);
    EXPECT_GE(report.retriesScheduled, 1u);
    EXPECT_EQ(report.cellErrors, 0u);
    EXPECT_EQ(report.summary.toJson(false),
              referenceSummary().toJson(false));
}

TEST(Fleet, ExhaustedRetriesDegradeToAnErrorRowWithWorkerStderr)
{
    const auto specs = smallMatrix();
    // Cell 0 hangs on EVERY attempt; the campaign must keep going.
    ScopedEnv hang("MCVERSI_FLEET_TEST_HANG_CELL", "0");
    ScopedEnv max_attempt("MCVERSI_FLEET_TEST_HANG_MAX_ATTEMPT", "99");

    FleetCoordinator::Options options;
    options.workers = 2;
    options.retries = 1;
    options.runDir = makeRunDir("hang_exhaust");
    options.cellTimeoutSeconds = 3.0;
    FleetReport report = FleetCoordinator(options).run(specs);

    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.cellErrors, 1u);
    EXPECT_EQ(report.cellsRun, specs.size());
    ASSERT_EQ(report.summary.campaigns(), specs.size());
    const campaign::CampaignResult &bad = report.summary.results[0];
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.error.find("2 attempt"), std::string::npos)
        << bad.error;
    // The error row carries the worker's captured stderr.
    EXPECT_NE(bad.error.find("test hook hanging"), std::string::npos)
        << bad.error;
    // Every OTHER cell still matches the reference bit-for-bit.
    for (std::size_t i = 1; i < specs.size(); ++i) {
        campaign::CampaignSummary got;
        got.results.push_back(report.summary.results[i]);
        campaign::CampaignSummary want;
        want.results.push_back(referenceSummary().results[i]);
        EXPECT_EQ(got.toJson(false), want.toJson(false))
            << "cell " << i;
    }
}

TEST(Fleet, ReplayKeepsTheLastRecordPerCell)
{
    const auto specs = smallMatrix();
    const std::string dir = makeRunDir("replay_dup");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = journalPath(dir);

    MetaRecord meta;
    meta.cells = specs.size();
    meta.fingerprint = matrixFingerprint(specs);

    CellRecord first;
    first.cell = 0;
    first.attempt = 1;
    first.spec = specs[0].toString();
    first.result.harness.testRuns = 5;

    CellRecord second = first;
    second.attempt = 2;
    second.result.harness.testRuns = 9;

    JournalWriter writer;
    writer.open(path);
    writer.append(encodeMeta(meta));
    writer.append(encodeCell(first));
    writer.append(encodeCell(second));
    writer.close();

    std::map<std::size_t, campaign::CampaignResult> completed;
    const ReplayStats stats = replayJournal(path, specs, completed);
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.applied, 2u);
    EXPECT_EQ(stats.duplicates, 1u);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].harness.testRuns, 9u);
    // The replayed result is re-attached to its in-memory spec.
    EXPECT_EQ(completed[0].spec.toString(), specs[0].toString());
}

TEST(Fleet, ReplayRejectsAJournalFromADifferentMatrix)
{
    const auto specs = smallMatrix();
    const std::string dir = makeRunDir("replay_mismatch");
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    const std::string path = journalPath(dir);

    // Journal written for a DIFFERENT matrix (one cell fewer).
    auto other = specs;
    other.pop_back();
    MetaRecord meta;
    meta.cells = other.size();
    meta.fingerprint = matrixFingerprint(other);
    JournalWriter writer;
    writer.open(path);
    writer.append(encodeMeta(meta));
    writer.close();

    std::map<std::size_t, campaign::CampaignResult> completed;
    EXPECT_THROW(replayJournal(path, specs, completed), FleetError);

    // A non-journal file is rejected too, not silently merged.
    std::filesystem::remove(path);
    JournalWriter writer2;
    writer2.open(path);
    writer2.append("cell=0 spec=not-a-meta-record");
    writer2.close();
    EXPECT_THROW(replayJournal(path, specs, completed), FleetError);
}

TEST(Fleet, TornJournalTailReRunsTheTornCellOnResume)
{
    const auto specs = smallMatrix();
    const std::string dir = makeRunDir("torn_resume");

    // Complete run, then tear the final record's last bytes off --
    // exactly what a SIGKILL mid-append leaves behind.
    FleetCoordinator::Options options;
    options.workers = 1;
    options.runDir = dir;
    FleetReport whole = FleetCoordinator(options).run(specs);
    EXPECT_EQ(whole.cellsRun, specs.size());

    const std::string path = journalPath(dir);
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 10);

    options.resume = true;
    FleetReport resumed = FleetCoordinator(options).run(specs);
    EXPECT_EQ(resumed.journalDropped, 1u);
    EXPECT_EQ(resumed.cellsResumed, specs.size() - 1u);
    EXPECT_EQ(resumed.cellsRun, 1u);
    EXPECT_EQ(resumed.summary.toJson(false),
              referenceSummary().toJson(false));
}
