/** @file Steady-state GA (tournament-2, delete-oldest) tests. */

#include <gtest/gtest.h>

#include "common/strict.hh"
#include "gp/ga.hh"

namespace gp = mcversi::gp;
using namespace mcversi::gp;

namespace {

GaParams
smallGa()
{
    GaParams ga;
    ga.population = 10;
    return ga;
}

GenParams
smallGen()
{
    GenParams gen;
    gen.testSize = 50;
    return gen;
}

} // namespace

TEST(Ga, InitialPopulationIsRandomThenSteadyState)
{
    SteadyStateGa ga(smallGa(), smallGen(), 1);
    for (int i = 0; i < 10; ++i) {
        gp::Test t = ga.nextTest();
        EXPECT_EQ(t.size(), 50u);
        ga.reportResult(0.1, {});
    }
    EXPECT_EQ(ga.populationSize(), 10u);
    // Steady state: population stays fixed.
    for (int i = 0; i < 5; ++i) {
        ga.nextTest();
        ga.reportResult(0.2, {});
    }
    EXPECT_EQ(ga.populationSize(), 10u);
    EXPECT_EQ(ga.evaluated(), 15u);
}

TEST(Ga, DeleteOldestReplacement)
{
    SteadyStateGa ga(smallGa(), smallGen(), 2);
    std::vector<std::uint64_t> first_fp;
    for (int i = 0; i < 10; ++i) {
        gp::Test t = ga.nextTest();
        first_fp.push_back(t.fingerprint());
        ga.reportResult(1.0, {});
    }
    // One more evaluation must evict the oldest (index 0).
    ga.nextTest();
    ga.reportResult(0.0, {});
    bool oldest_gone = true;
    for (const Individual &ind : ga.population()) {
        if (ind.test.fingerprint() == first_fp[0])
            oldest_gone = false;
    }
    EXPECT_TRUE(oldest_gone);
    // The second-oldest must still be present.
    bool second_present = false;
    for (const Individual &ind : ga.population()) {
        if (ind.test.fingerprint() == first_fp[1])
            second_present = true;
    }
    EXPECT_TRUE(second_present);
}

TEST(Ga, TournamentPrefersFitter)
{
    // Give one individual overwhelming fitness; offspring should
    // frequently inherit large parts of it. We detect selection
    // indirectly: mean fitness reported for children of the fit parent
    // keeps it in the population mix (smoke property).
    SteadyStateGa ga(smallGa(), smallGen(), 3);
    for (int i = 0; i < 10; ++i) {
        ga.nextTest();
        ga.reportResult(i == 5 ? 100.0 : 0.0, {});
    }
    EXPECT_GT(ga.meanFitness(), 0.0);
}

TEST(Ga, MeanNdtTracksReports)
{
    SteadyStateGa ga(smallGa(), smallGen(), 4);
    for (int i = 0; i < 10; ++i) {
        ga.nextTest();
        NdInfo nd;
        nd.ndt = 2.0;
        ga.reportResult(0.1, nd);
    }
    EXPECT_DOUBLE_EQ(ga.meanNdt(), 2.0);
}

TEST(Ga, SinglePointModeRuns)
{
    SteadyStateGa ga(smallGa(), smallGen(), 5,
                     SteadyStateGa::XoMode::SinglePoint);
    for (int i = 0; i < 15; ++i) {
        gp::Test t = ga.nextTest();
        EXPECT_EQ(t.size(), 50u);
        ga.reportResult(0.1, {});
    }
    EXPECT_EQ(ga.mode(), SteadyStateGa::XoMode::SinglePoint);
}

TEST(Ga, PairingMisuseThrowsInStrictBuilds)
{
    if (!mcversi::strictApiChecks())
        GTEST_SKIP() << "release build: contract checks are relaxed";

    SteadyStateGa ga(smallGa(), smallGen(), 6);
    // reportResult() before any nextTest(): misuse.
    EXPECT_THROW(ga.reportResult(0.1, {}), std::logic_error);
    ga.nextTest();
    // nextTest() while a test is pending: misuse.
    EXPECT_THROW(ga.nextTest(), std::logic_error);
    // The pending test can still be reported and the GA keeps working.
    EXPECT_NO_THROW(ga.reportResult(0.1, {}));
    EXPECT_EQ(ga.evaluated(), 1u);
}

TEST(Ga, DeterministicWithSeed)
{
    SteadyStateGa a(smallGa(), smallGen(), 7);
    SteadyStateGa b(smallGa(), smallGen(), 7);
    for (int i = 0; i < 12; ++i) {
        gp::Test ta = a.nextTest();
        gp::Test tb = b.nextTest();
        EXPECT_EQ(ta.fingerprint(), tb.fingerprint()) << "step " << i;
        a.reportResult(0.3, {});
        b.reportResult(0.3, {});
    }
}
