#include "memconsistency/streaming_checker.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mcversi::mc {

namespace {

/** splitmix64 finalizer: cheap, well-mixed open-addressing probe. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

template <typename L, typename E>
std::size_t
insertSorted(L &v, const E &el)
{
    // Events overwhelmingly arrive in per-thread program order, so the
    // append case is the hot path.
    if (v.empty() || v.back() < el) {
        v.push_back(el);
        return v.size() - 1;
    }
    const auto pos = static_cast<std::size_t>(
        std::upper_bound(v.begin(), v.end(), el) - v.begin());
    v.insertAt(pos, el);
    return pos;
}

template <typename L, typename E>
std::size_t
firstAtLeast(const L &v, const E &el)
{
    // In-order streams search mostly past the end of the list.
    if (v.empty() || v.back() < el)
        return v.size();
    return static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), el) - v.begin());
}

template <typename L, typename E>
std::size_t
firstAbove(const L &v, const E &el)
{
    if (v.empty() || !(el < v.back()))
        return v.size();
    return static_cast<std::size_t>(
        std::upper_bound(v.begin(), v.end(), el) - v.begin());
}

} // namespace

// -- StampedMap -------------------------------------------------------

std::int32_t &
StreamingChecker::StampedMap::findOrInsert(std::uint64_t key)
{
    if (slots_.empty() || (live_ + tombs_ + 1) * 4 > slots_.size() * 3)
        rehash();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    std::size_t firstTomb = slots_.size();
    while (true) {
        Slot &s = slots_[i];
        if (s.gen != gen_) {
            // End of the probe chain: insert, preferring the first
            // tombstone passed on the way (keeps chains short).
            if (firstTomb != slots_.size()) {
                Slot &t = slots_[firstTomb];
                t.key = key;
                t.val = -1;
                --tombs_;
                ++live_;
                return t.val;
            }
            s.gen = gen_;
            s.key = key;
            s.val = -1;
            ++live_;
            return s.val;
        }
        if (s.val == kTomb) {
            if (firstTomb == slots_.size())
                firstTomb = i;
        } else if (s.key == key) {
            return s.val;
        }
        i = (i + 1) & mask;
    }
}

std::int32_t
StreamingChecker::StampedMap::find(std::uint64_t key) const
{
    if (slots_.empty())
        return -1;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    while (true) {
        const Slot &s = slots_[i];
        if (s.gen != gen_)
            return -1;
        if (s.key == key && s.val != kTomb)
            return s.val;
        i = (i + 1) & mask;
    }
}

void
StreamingChecker::StampedMap::erase(std::uint64_t key)
{
    if (slots_.empty())
        return;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    while (true) {
        Slot &s = slots_[i];
        if (s.gen != gen_)
            return;
        if (s.key == key && s.val != kTomb) {
            s.val = kTomb;
            --live_;
            ++tombs_;
            return;
        }
        i = (i + 1) & mask;
    }
}

void
StreamingChecker::StampedMap::rehash()
{
    // Swap through the retained scratch buffer: a same-size rebuild
    // (tombstone purge, the steady state of a bounded-window stream)
    // allocates nothing.
    std::swap(slots_, scratch_);
    const std::size_t newSize =
        (scratch_.empty() || (live_ + 1) * 4 > scratch_.size() * 3)
            ? std::max<std::size_t>(1024, scratch_.size() * 2)
            : scratch_.size();
    slots_.assign(newSize, Slot{});
    live_ = 0;
    tombs_ = 0;
    const std::size_t mask = newSize - 1;
    for (const Slot &s : scratch_) {
        if (s.gen != gen_ || s.val == kTomb)
            continue;
        std::size_t i = static_cast<std::size_t>(mix64(s.key)) & mask;
        while (slots_[i].gen == gen_)
            i = (i + 1) & mask;
        slots_[i] = s;
        ++live_;
    }
}

// -- lifecycle --------------------------------------------------------

StreamingChecker::StreamingChecker(ModelProfile profile)
    : profile_(std::move(profile))
{
    profile_.validate();
    chainRR_ = profile_.orderRR;
    chainWW_ = profile_.orderWW;
    orderRW_ = profile_.orderRW;
    orderWR_ = profile_.orderWR;
    full_ = profile_.rmwFence == RmwSemantics::Full;
    acqrel_ = profile_.rmwFence == RmwSemantics::AcquireRelease;
    pairEdge_ = !orderRW_ && !acqrel_;
    rfiGlobal_ = profile_.rfiGlobal;
}

void
StreamingChecker::ThreadState::clear()
{
    reads.clear();
    writes.clear();
    fences.clear();
    acqs.clear();
    rels.clear();
    pendingRmw.clear();
    chainAt.clear();
    maxRetiredPoi = -1;
    touched = false;
}

void
StreamingChecker::begin()
{
    uniproc_.reset();
    ghb_.reset();
    nodes_.clear();
    valueMap_.clear();
    valueInfoCount_ = 0;
    initNode_.clear();
    for (const Pid pid : touchedPids_)
        threads_[static_cast<std::size_t>(pid)].clear();
    touchedPids_.clear();
    chainCount_ = 0;
    valueFree_.clear();
    ageFifo_.clear();
    ageHead_ = 0;
    retireScratch_.clear();
    liveHighWater_ = 0;
    truncatedStragglers_ = 0;
    truncatedStaleReads_ = 0;
    sinceCompact_ = 0;
    eventsConsumed_ = 0;
    detectionEvents_ = 0;
    pending_ = 0;
    violationKind_ = CheckResult::Kind::Ok;
    violA_ = violB_ = violC_ = kNoNode;
}

// -- node space -------------------------------------------------------

StreamingChecker::Node
StreamingChecker::newNode(EventId ev, Pid pid, Addr aux, std::int32_t poi,
                          std::uint8_t slot, AddrId aid)
{
    const Node n = uniproc_.addNode();
    const Node g = ghb_.addNode();
    assert(n == g && "graphs share one node space");
    (void)g;
    const NodeMeta meta{ev,      pid,     aux,     kInitVal, kNoNode,
                        kNoNode, kNoNode, kNoNode, kNoNode,  kNoNode,
                        kNoNode, kNoNode, kNoNode, poi,      aid,
                        slot,    kPairDone};
    // Node ids recycle in bounded-window mode, so the meta array is
    // slot-indexed rather than append-only.
    if (static_cast<std::size_t>(n) < nodes_.size())
        nodes_[static_cast<std::size_t>(n)] = meta;
    else
        nodes_.push_back(meta);
    if (window_ != 0)
        ageFifo_.push_back(n);
    return n;
}

StreamingChecker::Node
StreamingChecker::initNodeOf(AddrId aid, Addr addr)
{
    const auto a = static_cast<std::size_t>(aid);
    if (a >= initNode_.size())
        initNode_.resize(a + 1, kNoNode);
    Node &n = initNode_[a];
    assert(n != kRetiredNode && "callers guard the retired-init case");
    if (n == kNoNode)
        n = newNode(kNoEvent, kInitPid, addr, -1, 2, aid);
    return n;
}

StreamingChecker::ThreadState &
StreamingChecker::threadOf(Pid pid)
{
    const auto idx = static_cast<std::size_t>(pid);
    if (idx >= threads_.size())
        threads_.resize(idx + 1);
    ThreadState &t = threads_[idx];
    if (!t.touched) {
        t.touched = true;
        touchedPids_.push_back(pid);
    }
    return t;
}

// -- event ingestion --------------------------------------------------

void
StreamingChecker::onRecord(const ExecWitness &ew, EventId id,
                           WriteVal overwritten)
{
    if (violationKind_ != CheckResult::Kind::Ok)
        return;
    ++eventsConsumed_;
    try {
        ingest(ew, id, overwritten);
    } catch (const Detected &) {
        detectionEvents_ = eventsConsumed_;
        if (throwOnViolation_)
            throw StreamingViolation{};
    }
}

void
StreamingChecker::ingest(const ExecWitness &ew, EventId id,
                         WriteVal overwritten)
{
    const Event &e = ew.event(id);
    const Pid pid = e.iiid.pid;
    // The witness interned the address at record time; reuse its
    // dense id instead of probing a second map.
    const AddrId aid = ew.addrId(id);
    const Node n = newNode(
        id, pid, kNoAddr, e.iiid.poi,
        static_cast<std::uint8_t>(e.isRead() ? 1 : 2), aid);
    if (e.rmw)
        nodes_[static_cast<std::size_t>(n)].flags &=
            static_cast<std::uint8_t>(~kPairDone);
    if (!e.isRead())
        nodes_[static_cast<std::size_t>(n)].value = e.value;
    const Elem el{e.iiid.poi,
                  static_cast<std::uint8_t>(e.isRead() ? 1 : 2), n};
    ThreadState &t = threadOf(pid);
    if (window_ != 0 && e.iiid.poi <= t.maxRetiredPoi) {
        // Straggler behind the retirement frontier: orderings through
        // already-retired same-thread events are lost. Counted so a
        // truncated stream can never masquerade as a clean one.
        ++truncatedStragglers_;
    }
    insertPoLoc(t, aid, el);
    if (e.isRead()) {
        if (e.rmw && full_) {
            insertFence(t, Elem{e.iiid.poi, 0,
                                newNode(kNoEvent, pid, kNoAddr,
                                        e.iiid.poi, 0, aid)});
        }
        insertRead(t, el, e.rmw);
        resolveRead(n, e.value, aid, e.addr);
    } else {
        insertWrite(t, el, e.rmw);
        if (e.rmw && full_) {
            insertFence(t, Elem{e.iiid.poi, 3,
                                newNode(kNoEvent, pid, kNoAddr,
                                        e.iiid.poi, 3, aid)});
        }
        registerWrite(n, e.value, overwritten, aid, e.addr);
    }
    if (window_ != 0)
        ageWindow();
    if (liveHighWater_ < ghb_.numLive())
        liveHighWater_ = ghb_.numLive();
}

void
StreamingChecker::insertPoLoc(ThreadState &t, AddrId aid, Elem el)
{
    const auto a = static_cast<std::size_t>(aid);
    if (a >= t.chainAt.size())
        t.chainAt.resize(a + 1, -1);
    std::int32_t &slot = t.chainAt[a];
    if (slot < 0) {
        slot = static_cast<std::int32_t>(chainCount_);
        if (chainCount_ < chains_.size())
            chains_[chainCount_].clear();
        else
            chains_.emplace_back();
        ++chainCount_;
    }
    ElemList &chain = chains_[static_cast<std::size_t>(slot)];
    const std::size_t pos = insertSorted(chain, el);
    if (pos > 0)
        edgeU(chain[pos - 1].node, el.node);
    if (pos + 1 < chain.size())
        edgeU(el.node, chain[pos + 1].node);
}

void
StreamingChecker::insertRead(ThreadState &t, Elem el, bool rmw)
{
    const Node n = el.node;
    const std::size_t pos = insertSorted(t.reads, el);
    if (chainRR_) {
        if (pos > 0)
            edgeG(t.reads[pos - 1].node, n);
        if (pos + 1 < t.reads.size())
            edgeG(n, t.reads[pos + 1].node);
    }
    if (orderRW_) {
        if (chainWW_) {
            // Writes chain: one edge to the nearest following write
            // reaches every later write transitively.
            const std::size_t wi = firstAtLeast(t.writes, el);
            if (wi < t.writes.size())
                edgeG(n, t.writes[wi].node);
        } else {
            // Writes don't chain (PSO): this read must reach every
            // write up to the next read; later reads cover the rest.
            const bool hasNext = pos + 1 < t.reads.size();
            const Elem hi = hasNext ? t.reads[pos + 1] : Elem{};
            for (std::size_t wi = firstAtLeast(t.writes, el);
                 wi < t.writes.size() && (!hasNext || t.writes[wi] < hi);
                 ++wi) {
                edgeG(n, t.writes[wi].node);
            }
        }
    }
    if (orderWR_) {
        if (chainRR_) {
            // Reads chain: collect the writes since the previous read
            // (each must reach this read directly).
            std::size_t wi =
                pos > 0 ? firstAbove(t.writes, t.reads[pos - 1]) : 0;
            for (; wi < t.writes.size() && t.writes[wi] < el; ++wi)
                edgeG(t.writes[wi].node, n);
        } else {
            // Writes chain (validate() guarantees one side does): the
            // nearest preceding write covers all earlier ones.
            const std::size_t wi = firstAtLeast(t.writes, el);
            if (wi > 0)
                edgeG(t.writes[wi - 1].node, n);
        }
    }
    if (full_ && !t.fences.empty()) {
        const std::size_t fi = firstAtLeast(t.fences, el);
        if (fi > 0)
            edgeG(t.fences[fi - 1].node, n);
        if (fi < t.fences.size())
            edgeG(n, t.fences[fi].node);
    }
    if (acqrel_) {
        const std::size_t ai = firstAtLeast(t.acqs, el);
        if (ai > 0)
            edgeG(t.acqs[ai - 1].node, n);
        const std::size_t ri = firstAtLeast(t.rels, el);
        if (ri < t.rels.size())
            edgeG(n, t.rels[ri].node);
    }
    if (rmw) {
        t.pendingRmw.emplace_back(el.poi, n);
        if (acqrel_) {
            // Acquire: ordered before every later access up to and
            // including the next acquire (whose own edges chain on).
            const std::size_t na = firstAtLeast(t.acqs, el);
            const bool hasNext = na < t.acqs.size();
            const Elem hi = hasNext ? t.acqs[na] : Elem{};
            for (std::size_t i = firstAbove(t.reads, el);
                 i < t.reads.size() && (!hasNext || !(hi < t.reads[i]));
                 ++i) {
                edgeG(n, t.reads[i].node);
            }
            for (std::size_t i = firstAbove(t.writes, el);
                 i < t.writes.size() && (!hasNext || !(hi < t.writes[i]));
                 ++i) {
                edgeG(n, t.writes[i].node);
            }
            insertSorted(t.acqs, el);
        }
    }
}

void
StreamingChecker::insertWrite(ThreadState &t, Elem el, bool rmw)
{
    const Node n = el.node;
    const std::size_t pos = insertSorted(t.writes, el);
    if (chainWW_) {
        if (pos > 0)
            edgeG(t.writes[pos - 1].node, n);
        if (pos + 1 < t.writes.size())
            edgeG(n, t.writes[pos + 1].node);
    }
    if (orderRW_) {
        if (chainWW_) {
            // Writes chain: collect the reads since the previous write.
            std::size_t ri =
                pos > 0 ? firstAbove(t.reads, t.writes[pos - 1]) : 0;
            for (; ri < t.reads.size() && t.reads[ri] < el; ++ri)
                edgeG(t.reads[ri].node, n);
        } else {
            // Reads chain (PSO): the nearest preceding read covers all
            // earlier ones.
            const std::size_t ri = firstAtLeast(t.reads, el);
            if (ri > 0)
                edgeG(t.reads[ri - 1].node, n);
        }
    }
    if (orderWR_) {
        if (chainRR_) {
            // Reads chain: one edge to the nearest following read.
            const std::size_t ri = firstAtLeast(t.reads, el);
            if (ri < t.reads.size())
                edgeG(n, t.reads[ri].node);
        } else {
            // Writes chain: reach every read up to the next write.
            const bool hasNext = pos + 1 < t.writes.size();
            const Elem hi = hasNext ? t.writes[pos + 1] : Elem{};
            for (std::size_t ri = firstAtLeast(t.reads, el);
                 ri < t.reads.size() && (!hasNext || t.reads[ri] < hi);
                 ++ri) {
                edgeG(n, t.reads[ri].node);
            }
        }
    }
    if (full_ && !t.fences.empty()) {
        const std::size_t fi = firstAtLeast(t.fences, el);
        if (fi > 0)
            edgeG(t.fences[fi - 1].node, n);
        if (fi < t.fences.size())
            edgeG(n, t.fences[fi].node);
    }
    if (acqrel_) {
        const std::size_t ai = firstAtLeast(t.acqs, el);
        if (ai > 0)
            edgeG(t.acqs[ai - 1].node, n);
        const std::size_t ri = firstAtLeast(t.rels, el);
        if (ri < t.rels.size())
            edgeG(n, t.rels[ri].node);
    }
    if (rmw) {
        for (std::size_t i = 0; i < t.pendingRmw.size(); ++i) {
            if (t.pendingRmw[i].first != el.poi)
                continue;
            const Node r = t.pendingRmw[i].second;
            nodes_[static_cast<std::size_t>(n)].pairRead = r;
            nodes_[static_cast<std::size_t>(r)].pairWrite = n;
            t.pendingRmw.erase(t.pendingRmw.begin() +
                               static_cast<std::ptrdiff_t>(i));
            if (pairEdge_)
                edgeG(r, n);
            break;
        }
        if (acqrel_) {
            // Release: ordered after every access since (and
            // including) the previous release.
            const std::size_t pr = firstAtLeast(t.rels, el);
            const bool hasPrev = pr > 0;
            const Elem lo = hasPrev ? t.rels[pr - 1] : Elem{};
            for (std::size_t i = hasPrev ? firstAtLeast(t.reads, lo) : 0;
                 i < t.reads.size() && t.reads[i] < el; ++i) {
                edgeG(t.reads[i].node, n);
            }
            for (std::size_t i = hasPrev ? firstAtLeast(t.writes, lo) : 0;
                 i < t.writes.size() && t.writes[i] < el; ++i) {
                edgeG(t.writes[i].node, n);
            }
            insertSorted(t.rels, el);
        }
    }
}

void
StreamingChecker::insertFence(ThreadState &t, Elem el)
{
    const Node n = el.node;
    const std::size_t pos = insertSorted(t.fences, el);
    if (pos > 0)
        edgeG(t.fences[pos - 1].node, n);
    if (pos + 1 < t.fences.size())
        edgeG(n, t.fences[pos + 1].node);
    const bool hasPrev = pos > 0;
    const bool hasNext = pos + 1 < t.fences.size();
    const Elem lo = hasPrev ? t.fences[pos - 1] : Elem{};
    const Elem hi = hasNext ? t.fences[pos + 1] : Elem{};

    // Upstream: the chain tail alone when the class chains, else every
    // access since the previous fence. Downstream is the mirror image.
    const auto upstream = [&](const ElemList &v, bool chained) {
        if (chained) {
            const std::size_t i = firstAtLeast(v, el);
            if (i > 0)
                edgeG(v[i - 1].node, n);
            return;
        }
        for (std::size_t i = hasPrev ? firstAbove(v, lo) : 0;
             i < v.size() && v[i] < el; ++i) {
            edgeG(v[i].node, n);
        }
    };
    const auto downstream = [&](const ElemList &v, bool chained) {
        if (chained) {
            const std::size_t i = firstAbove(v, el);
            if (i < v.size())
                edgeG(n, v[i].node);
            return;
        }
        for (std::size_t i = firstAbove(v, el);
             i < v.size() && (!hasNext || v[i] < hi); ++i) {
            edgeG(n, v[i].node);
        }
    };
    upstream(t.reads, chainRR_);
    upstream(t.writes, chainWW_);
    downstream(t.reads, chainRR_);
    downstream(t.writes, chainWW_);
}

// -- online conflict orders -------------------------------------------

std::int32_t
StreamingChecker::valueInfoIdx(WriteVal v)
{
    std::int32_t &slot = valueMap_.findOrInsert(v);
    if (slot < 0) {
        if (!valueFree_.empty()) {
            slot = valueFree_.back();
            valueFree_.pop_back();
            valueInfo_[static_cast<std::size_t>(slot)] = ValueInfo{};
        } else {
            slot = static_cast<std::int32_t>(valueInfoCount_);
            if (valueInfoCount_ < valueInfo_.size())
                valueInfo_[valueInfoCount_] = ValueInfo{};
            else
                valueInfo_.emplace_back();
            ++valueInfoCount_;
        }
    }
    return slot;
}

void
StreamingChecker::resolveRead(Node r, WriteVal v, AddrId aid, Addr addr)
{
    if (v == kInitVal) {
        const auto a = static_cast<std::size_t>(aid);
        if (a < initNode_.size() && initNode_[a] == kRetiredNode) {
            // Init read after the init node retired (> window stale):
            // the rf cannot bind, so the stream stays incomplete and
            // reports truncation instead of a clean verdict.
            ++truncatedStaleReads_;
            ++pending_;
            return;
        }
        bindRf(r, initNodeOf(aid, addr));
        return;
    }
    const auto vi = static_cast<std::size_t>(valueInfoIdx(v));
    if (valueInfo_[vi].writer != kNoNode) {
        bindRf(r, valueInfo_[vi].writer);
    } else {
        // Store forwarding: the producing write has not serialized yet.
        nodes_[static_cast<std::size_t>(r)].pendingReadNext =
            valueInfo_[vi].pendingReadsHead;
        valueInfo_[vi].pendingReadsHead = r;
        ++pending_;
    }
}

void
StreamingChecker::registerWrite(Node w, WriteVal v, WriteVal overwritten,
                                AddrId aid, Addr addr)
{
    if (overwritten == kInitVal) {
        const auto a = static_cast<std::size_t>(aid);
        if (a < initNode_.size() && initNode_[a] == kRetiredNode) {
            // Overwriting init after its node retired: in unbounded
            // mode this is a co fork (the retire needed a successor),
            // but the evidence is gone -- count the truncation and
            // leave the co predecessor unresolved.
            ++truncatedStaleReads_;
            ++pending_;
        } else {
            bindCo(initNodeOf(aid, addr), w);
        }
    } else {
        const auto oi = static_cast<std::size_t>(valueInfoIdx(overwritten));
        if (valueInfo_[oi].writer != kNoNode) {
            bindCo(valueInfo_[oi].writer, w);
        } else {
            nodes_[static_cast<std::size_t>(w)].pendingCoNext =
                valueInfo_[oi].pendingCoHead;
            valueInfo_[oi].pendingCoHead = w;
            ++pending_;
        }
    }
    // Writes of kInitVal never resolve a read or a co predecessor
    // (those resolve to the init event), so they publish nothing.
    if (v == kInitVal)
        return;
    const auto vi = static_cast<std::size_t>(valueInfoIdx(v));
    if (valueInfo_[vi].writer != kNoNode) {
        // Duplicate write value: post-hoc resolution picks the smallest
        // event id, which is the first-registered node here.
        return;
    }
    valueInfo_[vi].writer = w;
    Node r = valueInfo_[vi].pendingReadsHead;
    valueInfo_[vi].pendingReadsHead = kNoNode;
    while (r != kNoNode) {
        const Node next =
            nodes_[static_cast<std::size_t>(r)].pendingReadNext;
        --pending_;
        bindRf(r, w);
        r = next;
    }
    Node c = valueInfo_[vi].pendingCoHead;
    valueInfo_[vi].pendingCoHead = kNoNode;
    while (c != kNoNode) {
        const Node next =
            nodes_[static_cast<std::size_t>(c)].pendingCoNext;
        --pending_;
        bindCo(w, c);
        c = next;
    }
}

void
StreamingChecker::bindRf(Node r, Node w)
{
    NodeMeta &rm = nodes_[static_cast<std::size_t>(r)];
    NodeMeta &wm = nodes_[static_cast<std::size_t>(w)];
    rm.rfSrc = w;
    edgeU(w, r);
    if (rfiGlobal_ || wm.pid == kInitPid || wm.pid != rm.pid)
        edgeG(w, r);
    const Node succ = wm.coSucc;
    if (succ != kNoNode) {
        // fr: the read precedes its source's co-successor.
        edgeU(r, succ);
        edgeG(r, succ);
        rm.flags |= kFrDone;
        noteCandidate(r);
    } else {
        rm.readerNext = wm.readersHead;
        wm.readersHead = r;
    }
    const Node pw = rm.pairWrite;
    if (pw != kNoNode)
        checkPairAtomicity(r, pw);
}

void
StreamingChecker::bindCo(Node prev, Node w)
{
    NodeMeta &pm = nodes_[static_cast<std::size_t>(prev)];
    if (pm.coSucc != kNoNode) {
        violA_ = w;
        violB_ = pm.coSucc;
        violC_ = prev;
        fail(CheckResult::Kind::WitnessAnomaly);
    }
    nodes_[static_cast<std::size_t>(w)].coPred = prev;
    pm.coSucc = w;
    edgeU(prev, w);
    edgeG(prev, w);
    // The co successor just arrived: flush the fr edges of every read
    // bound to prev.
    Node r = pm.readersHead;
    pm.readersHead = kNoNode;
    while (r != kNoNode) {
        NodeMeta &rm = nodes_[static_cast<std::size_t>(r)];
        const Node next = rm.readerNext;
        edgeU(r, w);
        edgeG(r, w);
        rm.flags |= kFrDone;
        noteCandidate(r);
        r = next;
    }
    noteCandidate(prev);
    const Node pr = nodes_[static_cast<std::size_t>(w)].pairRead;
    if (pr != kNoNode)
        checkPairAtomicity(pr, w);
}

void
StreamingChecker::checkPairAtomicity(Node r, Node w)
{
    const Node src = nodes_[static_cast<std::size_t>(r)].rfSrc;
    const Node pred = nodes_[static_cast<std::size_t>(w)].coPred;
    // pred == kRetiredNode means the check already ran: a write's co
    // predecessor only retires once its successor's pair is done.
    if (src == kNoNode || pred == kNoNode || pred == kRetiredNode)
        return;
    if (pred != src) {
        violA_ = r;
        violB_ = src;
        violC_ = w;
        fail(CheckResult::Kind::AtomicityViolation);
    }
    nodes_[static_cast<std::size_t>(r)].flags |= kPairDone;
    nodes_[static_cast<std::size_t>(w)].flags |= kPairDone;
    noteCandidate(r);
    noteCandidate(w);
    // The predecessor may have been waiting on this pair check.
    noteCandidate(pred);
}

// -- edge insertion / violation recording -----------------------------

void
StreamingChecker::edgeU(Node from, Node to)
{
    if (!uniproc_.addEdge(from, to))
        fail(CheckResult::Kind::UniprocViolation);
}

void
StreamingChecker::edgeG(Node from, Node to)
{
    if (!ghb_.addEdge(from, to))
        fail(CheckResult::Kind::GhbViolation);
}

void
StreamingChecker::fail(CheckResult::Kind kind)
{
    violationKind_ = kind;
    throw Detected{};
}

// -- bounded-window retirement ----------------------------------------

bool
StreamingChecker::retirable(const NodeMeta &m) const
{
    switch (m.slot) {
    case 0:
    case 3:
        // Fences receive edges only from same-thread list scans, which
        // the retirement removal blocks (counted as stragglers).
        return true;
    case 1:
        // Read: rf bound, fr emitted, RMW atomicity checked.
        return m.rfSrc != kNoNode && (m.flags & kFrDone) != 0 &&
               (m.flags & kPairDone) != 0;
    default: {
        // Write (or init): co successor exists, every reader's fr is
        // flushed, both its own and its successor's RMW pairs are
        // checked (the successor still reads coPred until then), and
        // -- so new readers' fr edges always target a live successor
        // -- its own predecessor retired first (co-chain order).
        if (m.coSucc == kNoNode || m.readersHead != kNoNode)
            return false;
        if ((m.flags & kPairDone) == 0)
            return false;
        const NodeMeta &s = nodes_[static_cast<std::size_t>(m.coSucc)];
        if ((s.flags & kPairDone) == 0)
            return false;
        return m.pid == kInitPid || (m.flags & kCoPredRetired) != 0;
    }
    }
}

void
StreamingChecker::eraseElem(ElemList &v, const Elem &el)
{
    const std::size_t pos = firstAtLeast(v, el);
    if (pos < v.size() && v[pos].node == el.node &&
        v[pos].poi == el.poi && v[pos].slot == el.slot) {
        v.eraseAt(pos);
    }
}

void
StreamingChecker::retireNow(Node n)
{
    NodeMeta &m = nodes_[static_cast<std::size_t>(n)];
    m.flags |= kRetired;
    const Elem el{m.poi, m.slot, n};
    if (m.pid != kInitPid) {
        ThreadState &t = threadOf(m.pid);
        if (t.maxRetiredPoi < m.poi)
            t.maxRetiredPoi = m.poi;
        switch (m.slot) {
        case 0:
        case 3:
            eraseElem(t.fences, el);
            break;
        case 1:
            eraseElem(t.reads, el);
            if (acqrel_ && m.pairWrite != kNoNode)
                eraseElem(t.acqs, el);
            eraseElem(chains_[static_cast<std::size_t>(
                          t.chainAt[static_cast<std::size_t>(m.aid)])],
                      el);
            break;
        default:
            eraseElem(t.writes, el);
            if (acqrel_ && m.pairRead != kNoNode)
                eraseElem(t.rels, el);
            eraseElem(chains_[static_cast<std::size_t>(
                          t.chainAt[static_cast<std::size_t>(m.aid)])],
                      el);
            break;
        }
    } else {
        // Init node: tombstone the per-address slot so stale init
        // accesses are detected (and counted) instead of binding to a
        // recycled node.
        initNode_[static_cast<std::size_t>(m.aid)] = kRetiredNode;
    }
    if (m.slot == 2) {
        // Erase the value binding (only if this write published it:
        // duplicate values keep the first registration).
        if (m.value != kInitVal) {
            const std::int32_t vslot = valueMap_.find(m.value);
            if (vslot >= 0 &&
                valueInfo_[static_cast<std::size_t>(vslot)].writer == n) {
                valueMap_.erase(m.value);
                valueInfo_[static_cast<std::size_t>(vslot)] = ValueInfo{};
                valueFree_.push_back(vslot);
            }
        }
        // Unblock the co successor (live by construction) and cascade.
        NodeMeta &s = nodes_[static_cast<std::size_t>(m.coSucc)];
        s.coPred = kRetiredNode;
        s.flags |= kCoPredRetired;
        retireScratch_.push_back(m.coSucc);
    }
    uniproc_.retireNode(n);
    ghb_.retireNode(n);
}

void
StreamingChecker::drainRetirements()
{
    while (!retireScratch_.empty()) {
        const Node n = retireScratch_.back();
        retireScratch_.pop_back();
        const NodeMeta &m = nodes_[static_cast<std::size_t>(n)];
        if ((m.flags & kRetired) != 0 || (m.flags & kAgedOut) == 0 ||
            !retirable(m)) {
            continue;
        }
        retireNow(n);
    }
}

void
StreamingChecker::ageWindow()
{
    while (ageFifo_.size() - ageHead_ > window_) {
        const Node n = ageFifo_[ageHead_++];
        nodes_[static_cast<std::size_t>(n)].flags |= kAgedOut;
        retireScratch_.push_back(n);
        if (ageHead_ > 1024 && ageHead_ >= ageFifo_.size() - ageHead_) {
            ageFifo_.erase(ageFifo_.begin(),
                           ageFifo_.begin() +
                               static_cast<std::ptrdiff_t>(ageHead_));
            ageHead_ = 0;
        }
    }
    drainRetirements();
    // Periodic compaction: rebase node ids and order indices so the
    // slot space tracks the live set, not the stream length.
    if (++sinceCompact_ >= window_ * 8 + 4096) {
        sinceCompact_ = 0;
        if (ghb_.numNodes() > ghb_.numLive() + window_ / 4 + 64)
            compactNow();
    }
}

void
StreamingChecker::compactNow()
{
    if (violationDetected())
        return;
    drainRetirements();
    const std::size_t slots = ghb_.numNodes();
    remapScratch_.assign(slots, kNoNode);
    Node next = 0;
    for (std::size_t i = 0; i < slots; ++i) {
        if ((nodes_[i].flags & kRetired) == 0)
            remapScratch_[i] = next++;
    }
    if (static_cast<std::size_t>(next) == slots)
        return;
    uniproc_.compact(remapScratch_, next);
    ghb_.compact(remapScratch_, next);

    // Stale references to retired (possibly recycled) nodes are never
    // read again -- map them to kRetiredNode rather than leaving a
    // dangling id that could alias a live node.
    const auto remap = [this](Node &n) {
        if (n >= 0) {
            const Node nw = remapScratch_[static_cast<std::size_t>(n)];
            n = nw >= 0 ? nw : kRetiredNode;
        }
    };
    for (std::size_t old = 0; old < slots; ++old) {
        const Node nw = remapScratch_[old];
        if (nw >= 0 && static_cast<std::size_t>(nw) != old)
            nodes_[static_cast<std::size_t>(nw)] = nodes_[old];
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(next); ++i) {
        NodeMeta &m = nodes_[i];
        remap(m.rfSrc);
        remap(m.coPred);
        remap(m.coSucc);
        remap(m.readersHead);
        remap(m.readerNext);
        remap(m.pendingReadNext);
        remap(m.pendingCoNext);
        remap(m.pairRead);
        remap(m.pairWrite);
    }
    for (Node &n : initNode_)
        remap(n);
    for (const Pid pid : touchedPids_) {
        ThreadState &t = threads_[static_cast<std::size_t>(pid)];
        for (ElemList *l : {&t.reads, &t.writes, &t.fences, &t.acqs,
                            &t.rels}) {
            for (Elem *e = l->begin(); e != l->end(); ++e)
                remap(e->node);
        }
        for (auto &[poi, node] : t.pendingRmw)
            remap(node);
    }
    for (std::size_t i = 0; i < chainCount_; ++i) {
        for (Elem *e = chains_[i].begin(); e != chains_[i].end(); ++e)
            remap(e->node);
    }
    for (std::size_t i = 0; i < valueInfoCount_; ++i) {
        ValueInfo &v = valueInfo_[i];
        remap(v.writer);
        remap(v.pendingReadsHead);
        remap(v.pendingCoHead);
    }
    for (std::size_t i = ageHead_; i < ageFifo_.size(); ++i)
        remap(ageFifo_[i]);
}

// -- replay / rendering -----------------------------------------------

void
StreamingChecker::replayRecorded(const ExecWitness &ew)
{
    begin();
    const auto &ows = ew.overwrites();
    std::size_t oi = 0;
    for (EventId id = 0; id < static_cast<EventId>(ew.numEvents()); ++id) {
        const Event &e = ew.event(id);
        if (e.isInit())
            continue;
        WriteVal overwritten = kInitVal;
        if (e.isWrite()) {
            // overwrittenBy_ gets one entry per recorded write, in
            // record order, so a sequential walk matches exactly.
            assert(oi < ows.size() && ows[oi].first == id);
            overwritten = ows[oi].second;
            ++oi;
        }
        onRecord(ew, id, overwritten);
        if (violationDetected())
            return;
    }
}

CheckResult
StreamingChecker::earlyStopResult(const ExecWitness &ew) const
{
    CheckResult res;
    res.kind = violationKind_;
    switch (violationKind_) {
    case CheckResult::Kind::Ok:
        break;
    case CheckResult::Kind::UniprocViolation:
    case CheckResult::Kind::GhbViolation: {
        const bool uni =
            violationKind_ == CheckResult::Kind::UniprocViolation;
        const IncrementalGraph &g = uni ? uniproc_ : ghb_;
        res.message = uni ? std::string("sc-per-location")
                          : "ghb(" + profile_.name + ")";
        res.message += " cycle:";
        for (const Node n : g.lastCycle()) {
            res.message += "\n  " + nodeString(ew, n);
            const EventId id = nodes_[static_cast<std::size_t>(n)].event;
            if (id != kNoEvent)
                res.cycle.push_back(id);
        }
        break;
    }
    case CheckResult::Kind::AtomicityViolation:
        res.message = "rmw atomicity violated: read " +
                      nodeString(ew, violA_) + " sourced from " +
                      nodeString(ew, violB_) + " but write " +
                      nodeString(ew, violC_) +
                      " does not immediately co-follow it";
        break;
    case CheckResult::Kind::WitnessAnomaly:
        res.message = "co fork: " + nodeString(ew, violA_) + " and " +
                      nodeString(ew, violB_) + " both overwrite " +
                      nodeString(ew, violC_);
        break;
    }
    if (window_ != 0 && (ew.droppedEvents() != 0 || windowTruncated())) {
        res.message += "\n  [window truncated: " +
                       std::to_string(ew.droppedEvents()) +
                       " events evicted, " +
                       std::to_string(truncatedStragglers_) +
                       " straggler orderings dropped, " +
                       std::to_string(truncatedStaleReads_) +
                       " stale accesses unresolved; the cycle's tail "
                       "may predate the retained window]";
    }
    return res;
}

std::string
StreamingChecker::nodeString(const ExecWitness &ew, Node n) const
{
    const NodeMeta &m = nodes_[static_cast<std::size_t>(n)];
    if (m.event != kNoEvent) {
        if (!ew.eventRetained(m.event)) {
            return "<evicted event #" + std::to_string(m.event) + ">";
        }
        return ew.event(m.event).toString();
    }
    const Addr addr = m.aux;
    if (addr != kNoAddr) {
        Event init;
        init.iiid = Iiid{kInitPid, -1};
        init.type = EventType::Write;
        init.addr = addr;
        init.value = kInitVal;
        return init.toString();
    }
    return "<fence>";
}

} // namespace mcversi::mc
