/**
 * @file
 * Cycle-detection graph used by the checker.
 *
 * The checker builds one graph per consistency constraint (uniproc, ghb)
 * out of generator edges -- a small set of edges whose transitive closure
 * equals the closure of the full (quadratic) relation union -- and runs a
 * single DFS (§2.1: "At the core of an axiomatic model checker ... is a
 * graph-search algorithm").
 *
 * Nodes 0..numEvents-1 are events; additional nodes (virtual fence
 * points) may be appended by architectures.
 *
 * The graph is built once per check, so reset() keeps all adjacency and
 * DFS scratch capacity: a graph owned by a checker and reset per check
 * is allocation-free in the steady state.
 */

#ifndef MCVERSI_MEMCONSISTENCY_GRAPH_HH
#define MCVERSI_MEMCONSISTENCY_GRAPH_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "memconsistency/event.hh"

namespace mcversi::mc {

/** Directed graph over dense int node ids, supporting cycle search. */
class CycleGraph
{
  public:
    using Node = std::int32_t;

    explicit CycleGraph(std::size_t num_nodes) { reset(num_nodes); }

    /**
     * Drop all nodes and edges and start over with @p num_nodes nodes.
     * Previously allocated adjacency lists keep their capacity.
     */
    void
    reset(std::size_t num_nodes)
    {
        for (std::size_t i = 0; i < numNodes_ && i < adj_.size(); ++i)
            adj_[i].clear();
        if (num_nodes > adj_.size())
            adj_.resize(num_nodes);
        numNodes_ = num_nodes;
    }

    /** Append an extra (non-event) node; returns its id. */
    Node
    addNode()
    {
        if (numNodes_ == adj_.size())
            adj_.emplace_back();
        else
            adj_[numNodes_].clear();
        return static_cast<Node>(numNodes_++);
    }

    void
    addEdge(Node from, Node to)
    {
        adj_[static_cast<std::size_t>(from)].push_back(to);
    }

    std::size_t numNodes() const { return numNodes_; }

    /** Successors of @p n, in edge insertion order. */
    std::span<const Node>
    successors(Node n) const
    {
        return adj_[static_cast<std::size_t>(n)];
    }

    /**
     * Find any cycle.
     *
     * @return the node sequence of one cycle (first node repeated at the
     *         end is omitted), or std::nullopt if the graph is acyclic.
     */
    std::optional<std::vector<Node>> findCycle() const;

    /** Convenience: true if no cycle exists. */
    bool acyclic() const { return !findCycle().has_value(); }

  private:
    /** Adjacency storage; only the first numNodes_ entries are live. */
    std::vector<std::vector<Node>> adj_;
    std::size_t numNodes_ = 0;

    // DFS scratch, reused across findCycle() calls so the steady state
    // allocates nothing.
    struct Frame
    {
        Node node;
        std::size_t edge = 0;
    };
    enum class Color : std::uint8_t { White, Grey, Black };
    mutable std::vector<Color> colorScratch_;
    mutable std::vector<Frame> stackScratch_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_GRAPH_HH
