/**
 * @file
 * Witness/checker hot-path throughput bench.
 *
 * The GA loop's premise is that checking every candidate execution is
 * cheap (§IV): each iteration records a witness, resolves its conflict
 * orders, and runs the axiomatic checker. This bench isolates exactly
 * that loop -- replay a pre-generated record trace into one reused
 * ExecWitness, finalize, check with one reused Checker -- and reports
 * tests/sec and check-µs/event per scenario, plus an aggregate.
 *
 * Traces are SC-consistent by construction (reads observe the current
 * value of a simulated interleaved memory), so every check exercises
 * the full Ok path: both cycle graphs are built and fully searched,
 * which is the common case inside a verification campaign. A fraction
 * of store records is deferred past younger same-thread records to
 * model stores serializing after later loads retired (the out-of-order
 * recording case the witness must handle).
 *
 * A repeated-seed scenario exercises collective checking: a fixed pool
 * of pre-generated traces is cycled many times -- the shape of a
 * campaign re-running its fittest tests -- once against a plain checker
 * and once against a checker with the verdict cache enabled. Timing
 * brackets only the check() call (the phase the cache can skip), and
 * before any measurement every pool trace is checked uncached, as a
 * cache miss, and as a cache hit; any divergence in kind, message, or
 * cycle aborts the bench with exit code 2.
 *
 * Schema 3 adds a streaming section comparing the post-hoc pipeline
 * (replay + finalize + full check) against the StreamingChecker
 * (events consumed by the recording sink + checkStreamed), over the
 * consistent scenarios plus a large-32k shape, and over corrupted
 * variants where a stale read closes a two-event po-loc/fr cycle
 * mid-trace: there the streaming side stops recording at the violating
 * event (the simulation early stop) while post-hoc pays the full trace
 * and check. Timed cells cover the paper-sized shape and up (on a
 * ~150-event trace both sides are dominated by fixed per-stream
 * costs, so the ratio measures constant factors, not throughput).
 * Before any timing, every (scenario x model) pair -- clean
 * and corrupted -- is gated for verdict divergence between
 * checkStreamed and check across all registered models; any mismatch
 * aborts with exit code 2.
 *
 * Schema 4 adds bounded-window soak coverage. A second divergence gate
 * re-streams every scenario (clean and corrupted) into a ring-buffer
 * witness large enough to retain the whole stream and requires the
 * windowed verdict byte-identical to unbounded checking. A "soak"
 * section then streams generated-on-the-fly traces (never materialized,
 * so the trace itself cannot dominate memory) through a fixed window:
 * one large-8k-sized cell and one >= 1M-event soak cell, identical in
 * everything but length. Each cell records check-µs/event, the
 * checker's live-node high-water mark, and the process peak RSS (VmHWM)
 * sampled after the cell -- CI gates the soak cell's peak RSS and
 * per-event cost against the large-8k cell's (O(window) memory, flat
 * per-event cost).
 *
 * Output: a JSON document (schema below) written to BENCH_checker.json
 * (override with MCVERSI_BENCH_JSON). MCVERSI_BENCH_SCALE scales the
 * per-scenario repeat budget (never the soak event counts).
 *
 *   {
 *     "bench": "checker_throughput", "schema": 4,
 *     "scenarios": [{"name", "threads", "opsPerThread", "addrs",
 *                    "events", "repeats", "seconds",
 *                    "testsPerSec", "checkUsPerEvent"}, ...],
 *     "aggregate": {"testsPerSec", "checkUsPerEvent"},
 *     "repeatedSeed": {"traces", "cycles", "repeats", "events",
 *                      "distinctInterleavings", "hitRate",
 *                      "uncached": {"seconds", "testsPerSec"},
 *                      "cached": {"seconds", "testsPerSec"},
 *                      "speedupTestsPerSec"},
 *     "streaming": {
 *       "models": [...], "divergenceChecks", "windowedChecks",
 *       "divergence",
 *       "consistent": [{"name", "events", "repeats",
 *                       "posthoc": {"seconds", "testsPerSec",
 *                                   "usPerEvent"},
 *                       "streaming": {"seconds", "testsPerSec",
 *                                     "usPerEvent"},
 *                       "slowdown"}, ...],
 *       "violation": [{"name", "events", "detectionEvents", "repeats",
 *                      "posthoc": {"seconds", "testsPerSec"},
 *                      "streaming": {"seconds", "testsPerSec"},
 *                      "speedupTestsPerSec"}, ...]},
 *     "soak": {"window",
 *              "cells": [{"name", "threads", "addrs", "events",
 *                         "passes", "seconds", "usPerEvent",
 *                         "liveNodeHighWater", "peakRssKb"}, ...]}
 *   }
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/rng.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"
#include "memconsistency/streaming_checker.hh"

using namespace mcversi;

namespace {

/** One record-trace entry, replayed into the witness each repeat. */
struct RecordOp
{
    Pid pid = 0;
    std::int32_t poi = 0;
    Addr addr = 0;
    WriteVal value = kInitVal;
    WriteVal overwritten = kInitVal;
    bool isWrite = false;
    bool rmw = false;
};

struct Scenario
{
    const char *name;
    int threads;
    int opsPerThread;
    int addrs;
    std::uint64_t seed;
};

/**
 * Generate an SC-consistent record trace: interleave threads over a
 * simulated memory where every store writes a globally unique value and
 * reports the value it overwrote, exactly like the simulator's
 * recording hooks.
 */
std::vector<RecordOp>
generateTrace(const Scenario &sc, Rng &rng)
{
    std::vector<RecordOp> trace;
    trace.reserve(static_cast<std::size_t>(sc.threads) *
                  static_cast<std::size_t>(sc.opsPerThread) * 2);

    std::vector<WriteVal> memory(static_cast<std::size_t>(sc.addrs),
                                 kInitVal);
    std::vector<std::int32_t> nextPoi(
        static_cast<std::size_t>(sc.threads), 0);
    std::vector<int> remaining(static_cast<std::size_t>(sc.threads),
                               sc.opsPerThread);
    WriteVal nextVal = 1;
    int live = sc.threads;

    while (live > 0) {
        const Pid pid =
            static_cast<Pid>(rng.below(static_cast<std::uint64_t>(
                sc.threads)));
        auto &left = remaining[static_cast<std::size_t>(pid)];
        if (left == 0)
            continue;
        --left;
        if (left == 0)
            --live;

        const Addr addr = 64 * rng.below(static_cast<std::uint64_t>(
                                   sc.addrs));
        const std::int32_t poi =
            nextPoi[static_cast<std::size_t>(pid)]++;
        WriteVal &cell = memory[static_cast<std::size_t>(addr / 64)];

        const double p = rng.uniform();
        if (p < 0.50) { // Load.
            trace.push_back({pid, poi, addr, cell, kInitVal, false,
                             false});
        } else if (p < 0.85) { // Store.
            const WriteVal v = nextVal++;
            trace.push_back({pid, poi, addr, v, cell, true, false});
            cell = v;
        } else { // Atomic RMW: read and write at one point in time.
            const WriteVal v = nextVal++;
            trace.push_back({pid, poi, addr, cell, kInitVal, false,
                             true});
            trace.push_back({pid, poi, addr, v, cell, true, true});
            cell = v;
        }
    }

    // Defer a fraction of stores a few records past their execution
    // point: stores are recorded when they serialize, which can be
    // after younger loads of the same thread retired. Decide first,
    // then move, so the record shifted into a vacated slot still gets
    // its own deferral roll.
    std::vector<std::pair<std::size_t, std::size_t>> moves;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isWrite && rng.boolWithProb(0.3))
            moves.emplace_back(i, 1 + rng.below(8));
    }
    for (const auto &[i, dist] : moves) {
        const std::size_t to = std::min(i + dist, trace.size() - 1);
        const RecordOp op = trace[i];
        trace.erase(trace.begin() + static_cast<std::ptrdiff_t>(i));
        trace.insert(trace.begin() + static_cast<std::ptrdiff_t>(to),
                     op);
    }
    return trace;
}

/** Replay one trace into @p ew (reused across repeats). */
void
replay(const std::vector<RecordOp> &trace, mc::ExecWitness &ew)
{
    ew.reset();
    for (const RecordOp &op : trace) {
        if (op.isWrite)
            ew.recordWrite(op.pid, op.poi, op.addr, op.value,
                           op.overwritten, op.rmw);
        else
            ew.recordRead(op.pid, op.poi, op.addr, op.value, op.rmw);
    }
}

struct ScenarioResult
{
    const Scenario *scenario = nullptr;
    std::size_t events = 0;
    int repeats = 0;
    double seconds = 0.0;

    double
    testsPerSec() const
    {
        return seconds > 0.0 ? repeats / seconds : 0.0;
    }

    double
    usPerEvent() const
    {
        const double total =
            static_cast<double>(events) * repeats;
        return total > 0.0 ? seconds * 1e6 / total : 0.0;
    }
};

ScenarioResult
runScenario(const Scenario &sc, const mc::Checker &checker, int repeats)
{
    Rng rng(sc.seed);
    const std::vector<RecordOp> trace = generateTrace(sc, rng);

    mc::ExecWitness ew;
    ScenarioResult res;
    res.scenario = &sc;

    // Warmup: populate witness/checker buffer capacities and verify
    // the trace is clean (any violation would mean a broken generator,
    // not a measurement).
    replay(trace, ew);
    const mc::CheckResult warm = checker.check(ew);
    if (!warm.ok()) {
        std::fprintf(stderr,
                     "bench trace '%s' unexpectedly violates: %s\n",
                     sc.name, warm.message.c_str());
        std::exit(1);
    }
    res.events = ew.numEvents();

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < repeats; ++i) {
        replay(trace, ew);
        const mc::CheckResult check = checker.check(ew);
        if (!check.ok())
            std::exit(1); // Unreachable; keeps the check observable.
    }
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    res.repeats = repeats;
    return res;
}

/** Collective-checking scenario: one trace pool, two checkers. */
struct RepeatedSeedResult
{
    std::size_t traces = 0;
    int cycles = 0;
    int repeats = 0;          ///< traces * cycles check() calls per side
    std::size_t events = 0;   ///< summed events of one pool pass
    double uncachedSeconds = 0.0; ///< check() time only, full analysis
    double cachedSeconds = 0.0;   ///< check() time only, memoized
    std::uint64_t distinct = 0;
    double hitRate = 0.0;

    double
    testsPerSec(double seconds) const
    {
        return seconds > 0.0 ? repeats / seconds : 0.0;
    }

    double
    speedup() const
    {
        return cachedSeconds > 0.0 ? uncachedSeconds / cachedSeconds
                                   : 0.0;
    }
};

/** Abort with exit code 2 unless @p got is byte-identical to @p want. */
void
requireIdentical(const mc::CheckResult &want, const mc::CheckResult &got,
                 std::size_t trace, const char *path)
{
    if (got.kind == want.kind && got.message == want.message &&
        got.cycle == want.cycle) {
        return;
    }
    std::fprintf(stderr,
                 "verdict divergence on trace %zu (%s path): "
                 "got '%s', want '%s'\n",
                 trace, path, mc::CheckResult::kindName(got.kind),
                 mc::CheckResult::kindName(want.kind));
    std::exit(2);
}

RepeatedSeedResult
runRepeatedSeed(int cycles)
{
    // A campaign-shaped pool: the GA re-evaluates its fittest tests
    // over and over, so a small set of interleaving shapes recurs for
    // thousands of test-runs. 32 paper-sized traces stand in for that
    // working set; MCVERSI_BENCH_SAMPLES resizes it like any other
    // per-cell sample count.
    const std::size_t kPoolSize =
        static_cast<std::size_t>(mcvbench::benchSamples(32));
    const Scenario shape{"repeated-seed", 4, 250, 16, 404};

    std::vector<std::vector<RecordOp>> pool;
    pool.reserve(kPoolSize);
    for (std::size_t t = 0; t < kPoolSize; ++t) {
        Scenario sc = shape;
        sc.seed = shape.seed + t;
        Rng rng(sc.seed);
        pool.push_back(generateTrace(sc, rng));
    }

    const mc::Checker uncached(mc::makeTso());
    mc::Checker cached(mc::makeTso());
    cached.enableVerdictCache({.capacity = 4096});

    RepeatedSeedResult res;
    res.traces = kPoolSize;
    res.cycles = cycles;
    res.repeats = static_cast<int>(kPoolSize) * cycles;

    // Divergence gate (and warmup): every pool trace checked uncached,
    // then as a cache miss, then as a cache hit -- all three must be
    // byte-identical verdicts.
    mc::ExecWitness ew;
    for (std::size_t t = 0; t < pool.size(); ++t) {
        replay(pool[t], ew);
        const mc::CheckResult want = uncached.check(ew);
        if (!want.ok()) {
            std::fprintf(stderr,
                         "bench trace 'repeated-seed/%zu' unexpectedly "
                         "violates: %s\n",
                         t, want.message.c_str());
            std::exit(1);
        }
        requireIdentical(want, cached.check(ew), t, "miss");
        requireIdentical(want, cached.check(ew), t, "hit");
        res.events += ew.numEvents();
    }
    cached.verdictCache()->clear();

    // Measured phase: identical replay loops; the timer brackets only
    // the check() call -- the phase memoization can short-circuit.
    // Replay and finalize (conflict-order resolution) happen with the
    // clock stopped: the campaign pays them for every run regardless
    // of caching, so they would only dilute the comparison.
    auto measure = [&](const mc::Checker &checker) {
        double seconds = 0.0;
        for (int c = 0; c < cycles; ++c) {
            for (const std::vector<RecordOp> &trace : pool) {
                replay(trace, ew);
                ew.finalize();
                const auto t0 = std::chrono::steady_clock::now();
                const mc::CheckResult check = checker.check(ew);
                seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
                if (!check.ok())
                    std::exit(1); // Unreachable; keeps check observable.
            }
        }
        return seconds;
    };

    res.uncachedSeconds = measure(uncached);
    res.cachedSeconds = measure(cached);

    const mc::VerdictCache::Stats &st = cached.verdictCache()->stats();
    res.distinct = st.distinct;
    res.hitRate = st.hitRate();
    return res;
}

// -- streaming vs post-hoc (schema 3) ---------------------------------

/**
 * Feed one trace through the witness with the streaming checker armed
 * as its recording sink, exactly like the simulation's recording path.
 * Returns true if recording stopped early at a detected violation
 * (only possible with throw-on-violation enabled).
 */
bool
streamReplay(const std::vector<RecordOp> &trace, mc::ExecWitness &ew,
             mc::StreamingChecker &sc)
{
    ew.reset();
    sc.begin();
    try {
        for (const RecordOp &op : trace) {
            if (op.isWrite)
                ew.recordWrite(op.pid, op.poi, op.addr, op.value,
                               op.overwritten, op.rmw);
            else
                ew.recordRead(op.pid, op.poi, op.addr, op.value,
                              op.rmw);
        }
    } catch (const mc::StreamingViolation &) {
        return true;
    }
    return false;
}

/**
 * Corrupt a consistent trace into a guaranteed violation: after the
 * first store past the quarter point, insert a same-thread read of the
 * value that store overwrote. The read's fr edge back to the store
 * closes a two-event po-loc/fr cycle -- an sc-per-location violation
 * under every model -- detectable the moment the read (or, if the
 * overwritten value's producing store was recorded late, that store)
 * is consumed.
 */
std::vector<RecordOp>
corruptTrace(const std::vector<RecordOp> &clean)
{
    std::size_t wi = clean.size();
    for (std::size_t i = clean.size() / 4; i < clean.size(); ++i) {
        if (clean[i].isWrite) {
            wi = i;
            break;
        }
    }
    if (wi == clean.size()) {
        for (std::size_t i = 0; i < clean.size(); ++i) {
            if (clean[i].isWrite) {
                wi = i;
                break;
            }
        }
    }
    if (wi == clean.size()) {
        std::fprintf(stderr, "corruptTrace: trace has no stores\n");
        std::exit(1);
    }

    const RecordOp w = clean[wi];
    std::vector<RecordOp> out = clean;
    // Make room at w.poi + 1: shift every later po slot of the thread,
    // including stores deferred to earlier record positions.
    for (RecordOp &op : out) {
        if (op.pid == w.pid && op.poi > w.poi)
            ++op.poi;
    }
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(wi) + 1,
               {w.pid, w.poi + 1, w.addr, w.overwritten, kInitVal,
                false, false});
    return out;
}

/** Interleaved timing trials per streaming cell (best kept). */
constexpr int kStreamingTrials = 3;

/** Wall-clock seconds spent in @p body. */
template <typename Body>
double
timedSeconds(Body &&body)
{
    const auto t0 = std::chrono::steady_clock::now();
    body();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** One streaming-vs-post-hoc comparison cell. */
struct StreamingPair
{
    const Scenario *scenario = nullptr;
    std::size_t events = 0;
    /** Events consumed at detection (violation cells only). */
    std::uint64_t detectionEvents = 0;
    int repeats = 0;
    double posthocSeconds = 0.0;
    double streamingSeconds = 0.0;

    double
    testsPerSec(double seconds) const
    {
        return seconds > 0.0 ? repeats / seconds : 0.0;
    }

    double
    usPerEvent(double seconds) const
    {
        const double total = static_cast<double>(events) * repeats;
        return total > 0.0 ? seconds * 1e6 / total : 0.0;
    }

    /** Consistent cells: streaming cost relative to post-hoc (<= 1.2). */
    double
    slowdown() const
    {
        return posthocSeconds > 0.0
                   ? streamingSeconds / posthocSeconds
                   : 0.0;
    }

    /** Violation cells: early-stop win in tests/sec (>= 2 expected). */
    double
    speedup() const
    {
        return streamingSeconds > 0.0
                   ? posthocSeconds / streamingSeconds
                   : 0.0;
    }
};

/**
 * Consistent-trace cell: post-hoc side replays and fully checks every
 * repeat; streaming side consumes events through the sink during
 * recording and checkStreamed() short-circuits the cycle analysis.
 */
StreamingPair
runStreamingConsistent(const Scenario &shape, int repeats)
{
    Rng rng(shape.seed);
    const std::vector<RecordOp> trace = generateTrace(shape, rng);

    const mc::Checker checker(mc::makeTso());
    mc::StreamingChecker sc(mc::modelProfile("tso"));

    StreamingPair res;
    res.scenario = &shape;
    res.repeats = repeats;

    mc::ExecWitness ew;
    replay(trace, ew); // Warmup + sanity.
    if (!checker.check(ew).ok()) {
        std::fprintf(stderr,
                     "bench trace '%s' unexpectedly violates\n",
                     shape.name);
        std::exit(1);
    }
    res.events = ew.numEvents();

    mc::ExecWitness sew;
    sew.setEventSink(&sc);
    streamReplay(trace, sew, sc); // Warmup capacities.
    if (!checker.checkStreamed(sew, sc).ok() || sc.violationDetected())
        std::exit(2); // Clean trace must stream clean.

    // Interleaved best-of-N trials: the slowdown ratio is sensitive to
    // CPU frequency drift, so alternate the sides and keep each side's
    // fastest trial rather than trusting one long timed loop.
    res.posthocSeconds = -1.0;
    res.streamingSeconds = -1.0;
    for (int trial = 0; trial < kStreamingTrials; ++trial) {
        double s = timedSeconds([&] {
            for (int i = 0; i < repeats; ++i) {
                replay(trace, ew);
                if (!checker.check(ew).ok())
                    std::exit(1); // Unreachable; keeps it observable.
            }
        });
        if (res.posthocSeconds < 0.0 || s < res.posthocSeconds)
            res.posthocSeconds = s;
        s = timedSeconds([&] {
            for (int i = 0; i < repeats; ++i) {
                streamReplay(trace, sew, sc);
                if (!checker.checkStreamed(sew, sc).ok())
                    std::exit(1); // Unreachable; keeps it observable.
            }
        });
        if (res.streamingSeconds < 0.0 || s < res.streamingSeconds)
            res.streamingSeconds = s;
    }
    return res;
}

/**
 * Violation cell: the streaming side records only until the violating
 * event throws (the simulation early stop) and renders the early-stop
 * verdict; the post-hoc side must record the whole trace and run the
 * full analysis before it can notice anything.
 */
StreamingPair
runStreamingViolation(const Scenario &shape, int repeats)
{
    Rng rng(shape.seed);
    const std::vector<RecordOp> corrupt =
        corruptTrace(generateTrace(shape, rng));

    const mc::Checker checker(mc::makeTso());
    mc::StreamingChecker sc(mc::modelProfile("tso"));
    sc.setThrowOnViolation(true);

    StreamingPair res;
    res.scenario = &shape;
    res.repeats = repeats;

    mc::ExecWitness ew;
    replay(corrupt, ew); // Warmup + sanity.
    if (checker.check(ew).ok()) {
        std::fprintf(stderr,
                     "corrupted trace '%s' unexpectedly checks Ok\n",
                     shape.name);
        std::exit(1);
    }
    res.events = ew.numEvents();

    mc::ExecWitness sew;
    sew.setEventSink(&sc);
    if (!streamReplay(corrupt, sew, sc) ||
        sc.earlyStopResult(sew).ok()) {
        std::fprintf(stderr,
                     "streaming checker missed the '%s' violation\n",
                     shape.name);
        std::exit(2);
    }
    res.detectionEvents = sc.eventsUntilDetection();

    // Interleaved best-of-N trials (same rationale as the consistent
    // cell: keep CPU noise out of the reported ratio).
    res.posthocSeconds = -1.0;
    res.streamingSeconds = -1.0;
    for (int trial = 0; trial < kStreamingTrials; ++trial) {
        double s = timedSeconds([&] {
            for (int i = 0; i < repeats; ++i) {
                replay(corrupt, ew);
                if (checker.check(ew).ok())
                    std::exit(1); // Unreachable; keeps it observable.
            }
        });
        if (res.posthocSeconds < 0.0 || s < res.posthocSeconds)
            res.posthocSeconds = s;
        s = timedSeconds([&] {
            for (int i = 0; i < repeats; ++i) {
                if (!streamReplay(corrupt, sew, sc) ||
                    sc.earlyStopResult(sew).ok()) {
                    std::exit(1); // Unreachable; keeps it observable.
                }
            }
        });
        if (res.streamingSeconds < 0.0 || s < res.streamingSeconds)
            res.streamingSeconds = s;
    }
    return res;
}

/**
 * Verdict-divergence gate: for every scenario shape, stream the clean
 * and the corrupted trace under every registered model and require the
 * streaming pipeline's verdict byte-identical to post-hoc checking,
 * with the online detection flag agreeing with the verdict. Returns
 * the number of (trace x model) comparisons; any divergence aborts
 * with exit code 2.
 */
int
streamingDivergenceGate(const Scenario *shapes, std::size_t count)
{
    int checked = 0;
    for (std::size_t s = 0; s < count; ++s) {
        Rng rng(shapes[s].seed);
        const std::vector<RecordOp> clean =
            generateTrace(shapes[s], rng);
        const std::vector<RecordOp> corrupt = corruptTrace(clean);
        for (const std::string &model : mc::modelNames()) {
            const mc::Checker checker(mc::makeModel(model));
            mc::StreamingChecker sc(mc::modelProfile(model));
            mc::ExecWitness pew;
            mc::ExecWitness sew;
            sew.setEventSink(&sc);
            for (const std::vector<RecordOp> *trace :
                 {&clean, &corrupt}) {
                replay(*trace, pew);
                const mc::CheckResult want = checker.check(pew);
                streamReplay(*trace, sew, sc);
                if (sc.violationDetected() == want.ok()) {
                    std::fprintf(stderr,
                                 "streaming detection flag diverges "
                                 "from post-hoc verdict ('%s', %s)\n",
                                 shapes[s].name, model.c_str());
                    std::exit(2);
                }
                requireIdentical(want, checker.checkStreamed(sew, sc),
                                 s, model.c_str());
                ++checked;
            }
        }
    }
    return checked;
}

/**
 * Windowed-verdict divergence gate: re-run every shape's clean and
 * corrupted trace through a ring-buffer witness large enough to retain
 * the whole stream and require the bounded-window verdict
 * byte-identical to unbounded post-hoc checking under every registered
 * model. Returns the number of (trace x model) comparisons; any
 * divergence aborts with exit code 2.
 */
int
windowedDivergenceGate(const Scenario *shapes, std::size_t count)
{
    int checked = 0;
    for (std::size_t s = 0; s < count; ++s) {
        Rng rng(shapes[s].seed);
        const std::vector<RecordOp> clean =
            generateTrace(shapes[s], rng);
        const std::vector<RecordOp> corrupt = corruptTrace(clean);
        const std::size_t window = corrupt.size() + 64;
        for (const std::string &model : mc::modelNames()) {
            const mc::Checker checker(mc::makeModel(model));
            mc::StreamingChecker sc(mc::modelProfile(model));
            sc.setWindow(window);
            mc::ExecWitness pew;
            mc::ExecWitness wew;
            wew.setWindow(window);
            wew.setEventSink(&sc);
            for (const std::vector<RecordOp> *trace :
                 {&clean, &corrupt}) {
                replay(*trace, pew);
                const mc::CheckResult want = checker.check(pew);
                streamReplay(*trace, wew, sc);
                if (wew.droppedEvents() != 0) {
                    std::fprintf(stderr,
                                 "windowed gate ring dropped events "
                                 "('%s', %s)\n",
                                 shapes[s].name, model.c_str());
                    std::exit(2);
                }
                requireIdentical(want, checker.checkStreamed(wew, sc),
                                 s, model.c_str());
                ++checked;
            }
        }
    }
    return checked;
}

// -- bounded-window soak (schema 4) -----------------------------------

/**
 * On-the-fly soak traffic: random threads issue loads of the current
 * memory value and uniquely-valued stores over a small address pool.
 * Nothing is materialized -- the soak cells exist to prove O(window)
 * memory, and a precomputed million-record trace vector would dominate
 * the peak-RSS measurement. Loads observe only current values and
 * records arrive in per-thread program order, so a window comfortably
 * above the address-reuse distance never drops an ordering constraint.
 */
class SoakSource
{
  public:
    SoakSource(int threads, int addrs, std::uint64_t seed)
        : rng_(seed), threads_(threads),
          memory_(static_cast<std::size_t>(addrs), kInitVal),
          nextPoi_(static_cast<std::size_t>(threads), 0)
    {
    }

    RecordOp
    next()
    {
        const Pid pid = static_cast<Pid>(
            rng_.below(static_cast<std::uint64_t>(threads_)));
        const auto ai =
            static_cast<std::size_t>(rng_.below(memory_.size()));
        const Addr addr = 64 * static_cast<Addr>(ai);
        const std::int32_t poi =
            nextPoi_[static_cast<std::size_t>(pid)]++;
        if (rng_.boolWithProb(0.5))
            return {pid, poi, addr, memory_[ai], kInitVal, false,
                    false};
        const WriteVal v = nextVal_++;
        const RecordOp op{pid, poi, addr, v, memory_[ai], true, false};
        memory_[ai] = v;
        return op;
    }

  private:
    Rng rng_;
    int threads_;
    std::vector<WriteVal> memory_;
    std::vector<std::int32_t> nextPoi_;
    WriteVal nextVal_ = 1;
};

struct SoakCell
{
    const char *name = "";
    int threads = 0;
    int addrs = 0;
    std::uint64_t events = 0;
    int passes = 0;
    double seconds = 0.0;         ///< best pass
    std::size_t liveHighWater = 0; ///< last pass's live-node peak
    std::size_t peakRssKb = 0;     ///< VmHWM right after this cell

    double
    usPerEvent() const
    {
        return events > 0
                   ? seconds * 1e6 / static_cast<double>(events)
                   : 0.0;
    }
};

/**
 * Stream @p events generated-on-the-fly records through a bounded
 * window and require a clean, complete, truncation-free stream (any
 * dropped constraint or dirty verdict aborts with exit code 2 -- a
 * soak cell that truncates is measuring the wrong thing). Each pass
 * first streams 2 * window events with the clock stopped: the first
 * ~window events of any stream run below the window and pay no
 * retirement or compaction cost, which would bias a short cell cheap
 * and break the flat-per-event comparison against the million-event
 * cell. Keeps the best of @p passes wall-clock passes; the live-node
 * high water and the process peak RSS are sampled after the final
 * pass.
 */
SoakCell
runSoak(const char *name, int threads, int addrs, std::uint64_t events,
        std::size_t window, std::uint64_t seed, int passes)
{
    const mc::Checker checker(mc::makeTso());
    mc::StreamingChecker sc(mc::modelProfile("tso"));
    mc::ExecWitness ew;
    ew.setWindow(window);
    sc.setWindow(window);
    ew.setEventSink(&sc);

    SoakCell cell;
    cell.name = name;
    cell.threads = threads;
    cell.addrs = addrs;
    cell.events = events;
    cell.passes = passes;
    cell.seconds = -1.0;
    const std::uint64_t warmup = 2 * window;
    for (int p = 0; p < passes; ++p) {
        SoakSource src(threads, addrs,
                       seed + static_cast<std::uint64_t>(p));
        const auto emit = [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                const RecordOp op = src.next();
                if (op.isWrite)
                    ew.recordWrite(op.pid, op.poi, op.addr, op.value,
                                   op.overwritten);
                else
                    ew.recordRead(op.pid, op.poi, op.addr, op.value);
            }
        };
        ew.reset();
        sc.begin();
        emit(warmup);
        const double s = timedSeconds([&] { emit(events); });
        const mc::CheckResult res = checker.checkStreamed(ew, sc);
        if (!res.ok() || sc.violationDetected() ||
            !sc.streamComplete() || sc.windowTruncated() ||
            sc.eventsConsumed() != warmup + events) {
            std::fprintf(stderr,
                         "soak cell '%s' did not stream clean through "
                         "window %zu: %s\n",
                         name, window, res.message.c_str());
            std::exit(2);
        }
        if (cell.seconds < 0.0 || s < cell.seconds)
            cell.seconds = s;
    }
    cell.liveHighWater = sc.liveNodeHighWater();
    cell.peakRssKb = mcvbench::peakRssKb();
    return cell;
}

std::string
toJson(const std::vector<ScenarioResult> &results,
       const RepeatedSeedResult &rs,
       const std::vector<StreamingPair> &consistent,
       const std::vector<StreamingPair> &violation, int gate_checks,
       int windowed_checks, const std::vector<SoakCell> &soak,
       std::size_t soak_window)
{
    char buf[512];
    std::string json = "{\n  \"bench\": \"checker_throughput\",\n"
                       "  \"schema\": 4,\n  \"scenarios\": [\n";
    int total_repeats = 0;
    double total_seconds = 0.0;
    double total_events = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"threads\": %d, "
            "\"opsPerThread\": %d, \"addrs\": %d, \"events\": %zu, "
            "\"repeats\": %d, \"seconds\": %.6f, "
            "\"testsPerSec\": %.1f, \"checkUsPerEvent\": %.4f}%s\n",
            r.scenario->name, r.scenario->threads,
            r.scenario->opsPerThread, r.scenario->addrs, r.events,
            r.repeats, r.seconds, r.testsPerSec(), r.usPerEvent(),
            i + 1 < results.size() ? "," : "");
        json += buf;
        total_repeats += r.repeats;
        total_seconds += r.seconds;
        total_events += static_cast<double>(r.events) * r.repeats;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"aggregate\": {\"testsPerSec\": %.1f, "
                  "\"checkUsPerEvent\": %.4f},\n",
                  total_seconds > 0.0 ? total_repeats / total_seconds
                                      : 0.0,
                  total_events > 0.0
                      ? total_seconds * 1e6 / total_events
                      : 0.0);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"repeatedSeed\": {\"traces\": %zu, \"cycles\": %d, "
        "\"repeats\": %d, \"events\": %zu,\n"
        "    \"distinctInterleavings\": %llu, \"hitRate\": %.4f,\n"
        "    \"uncached\": {\"seconds\": %.6f, \"testsPerSec\": %.1f},\n"
        "    \"cached\": {\"seconds\": %.6f, \"testsPerSec\": %.1f},\n"
        "    \"speedupTestsPerSec\": %.2f},\n",
        rs.traces, rs.cycles, rs.repeats, rs.events,
        static_cast<unsigned long long>(rs.distinct), rs.hitRate,
        rs.uncachedSeconds, rs.testsPerSec(rs.uncachedSeconds),
        rs.cachedSeconds, rs.testsPerSec(rs.cachedSeconds),
        rs.speedup());
    json += buf;

    json += "  \"streaming\": {\n    \"models\": [";
    const std::vector<std::string> &models = mc::modelNames();
    for (std::size_t i = 0; i < models.size(); ++i) {
        json += i > 0 ? ", \"" : "\"";
        json += models[i];
        json += "\"";
    }
    std::snprintf(buf, sizeof(buf),
                  "],\n    \"divergenceChecks\": %d, "
                  "\"windowedChecks\": %d, "
                  "\"divergence\": 0,\n    \"consistent\": [\n",
                  gate_checks, windowed_checks);
    json += buf;
    for (std::size_t i = 0; i < consistent.size(); ++i) {
        const StreamingPair &p = consistent[i];
        std::snprintf(
            buf, sizeof(buf),
            "      {\"name\": \"%s\", \"events\": %zu, "
            "\"repeats\": %d,\n"
            "        \"posthoc\": {\"seconds\": %.6f, "
            "\"testsPerSec\": %.1f, \"usPerEvent\": %.4f},\n"
            "        \"streaming\": {\"seconds\": %.6f, "
            "\"testsPerSec\": %.1f, \"usPerEvent\": %.4f},\n"
            "        \"slowdown\": %.2f}%s\n",
            p.scenario->name, p.events, p.repeats, p.posthocSeconds,
            p.testsPerSec(p.posthocSeconds),
            p.usPerEvent(p.posthocSeconds), p.streamingSeconds,
            p.testsPerSec(p.streamingSeconds),
            p.usPerEvent(p.streamingSeconds), p.slowdown(),
            i + 1 < consistent.size() ? "," : "");
        json += buf;
    }
    json += "    ],\n    \"violation\": [\n";
    for (std::size_t i = 0; i < violation.size(); ++i) {
        const StreamingPair &p = violation[i];
        std::snprintf(
            buf, sizeof(buf),
            "      {\"name\": \"%s\", \"events\": %zu, "
            "\"detectionEvents\": %llu, \"repeats\": %d,\n"
            "        \"posthoc\": {\"seconds\": %.6f, "
            "\"testsPerSec\": %.1f},\n"
            "        \"streaming\": {\"seconds\": %.6f, "
            "\"testsPerSec\": %.1f},\n"
            "        \"speedupTestsPerSec\": %.2f}%s\n",
            p.scenario->name, p.events,
            static_cast<unsigned long long>(p.detectionEvents),
            p.repeats, p.posthocSeconds,
            p.testsPerSec(p.posthocSeconds), p.streamingSeconds,
            p.testsPerSec(p.streamingSeconds), p.speedup(),
            i + 1 < violation.size() ? "," : "");
        json += buf;
    }
    json += "    ]\n  },\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"soak\": {\"window\": %zu, \"cells\": [\n",
                  soak_window);
    json += buf;
    for (std::size_t i = 0; i < soak.size(); ++i) {
        const SoakCell &c = soak[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"threads\": %d, \"addrs\": %d, "
            "\"events\": %llu, \"passes\": %d,\n"
            "      \"seconds\": %.6f, \"usPerEvent\": %.4f, "
            "\"liveNodeHighWater\": %zu, \"peakRssKb\": %zu}%s\n",
            c.name, c.threads, c.addrs,
            static_cast<unsigned long long>(c.events), c.passes,
            c.seconds, c.usPerEvent(), c.liveHighWater, c.peakRssKb,
            i + 1 < soak.size() ? "," : "");
        json += buf;
    }
    json += "  ]}\n}\n";
    return json;
}

} // namespace

int
main()
{
    const double scale = mcvbench::benchScale();

    // Paper-shaped workloads: Table 3 runs 1k-op tests; small and large
    // bracket it so both constant and per-event costs are visible.
    const Scenario scenarios[] = {
        {"small-256", 2, 64, 8, 101},
        {"paper-1k", 4, 250, 16, 202},
        {"large-8k", 8, 1024, 32, 303},
    };
    const int base_repeats[] = {4000, 1200, 120};

    const mc::Checker checker(mc::makeTso());
    std::vector<ScenarioResult> results;
    for (std::size_t i = 0; i < std::size(scenarios); ++i) {
        const int repeats = std::max(
            1, static_cast<int>(base_repeats[i] * scale));
        results.push_back(
            runScenario(scenarios[i], checker, repeats));
        const ScenarioResult &r = results.back();
        std::printf("%-10s %zu events  %6d repeats  %8.3f s  "
                    "%10.1f tests/s  %8.4f us/event\n",
                    r.scenario->name, r.events, r.repeats, r.seconds,
                    r.testsPerSec(), r.usPerEvent());
    }

    const int cycles =
        std::max(1, static_cast<int>(40 * scale));
    const RepeatedSeedResult rs = runRepeatedSeed(cycles);
    std::printf("%-10s %zu traces %6d repeats  uncached %8.1f "
                "tests/s  cached %8.1f tests/s  %4.2fx  hit-rate %.3f "
                "distinct %llu\n",
                "repeated", rs.traces, rs.repeats,
                rs.testsPerSec(rs.uncachedSeconds),
                rs.testsPerSec(rs.cachedSeconds), rs.speedup(),
                rs.hitRate,
                static_cast<unsigned long long>(rs.distinct));

    // Streaming vs post-hoc (schema 3). The 32k shape stresses the
    // incremental graphs well past the paper's test sizes.
    const Scenario streaming_shapes[] = {
        {"small-256", 2, 64, 8, 101},
        {"paper-1k", 4, 250, 16, 202},
        {"large-8k", 8, 1024, 32, 303},
        {"large-32k", 8, 4096, 64, 505},
    };
    const int streaming_repeats[] = {4000, 1200, 120, 32};

    const int gate_checks = streamingDivergenceGate(
        streaming_shapes, std::size(streaming_shapes));
    std::printf("streaming  divergence gate: %d verdict pairs "
                "byte-identical across {%s}\n",
                gate_checks, mc::modelNamesJoined().c_str());

    const int windowed_checks = windowedDivergenceGate(
        streaming_shapes, std::size(streaming_shapes));
    std::printf("streaming  windowed gate: %d bounded-window verdict "
                "pairs byte-identical to unbounded checking\n",
                windowed_checks);

    std::vector<StreamingPair> consistent;
    std::vector<StreamingPair> violation;
    for (std::size_t i = 0; i < std::size(streaming_shapes); ++i) {
        // Timed cells cover the paper-sized shape and up; the ~150
        // event shape is dominated by per-stream fixed costs on both
        // sides (and, for violation cells, leaves no trace to skip),
        // so its timings measure constant factors rather than checking
        // throughput. The divergence gate above still exercises it
        // under every model.
        if (streaming_shapes[i].opsPerThread < 250)
            continue;
        const int repeats = std::max(
            1, static_cast<int>(streaming_repeats[i] * scale));
        consistent.push_back(
            runStreamingConsistent(streaming_shapes[i], repeats));
        const StreamingPair &c = consistent.back();
        std::printf("stream-ok  %-10s %zu events  %6d repeats  "
                    "posthoc %8.1f tests/s  streaming %8.1f tests/s  "
                    "slowdown %4.2fx\n",
                    c.scenario->name, c.events, c.repeats,
                    c.testsPerSec(c.posthocSeconds),
                    c.testsPerSec(c.streamingSeconds), c.slowdown());
        violation.push_back(
            runStreamingViolation(streaming_shapes[i], repeats));
        const StreamingPair &v = violation.back();
        std::printf("stream-bug %-10s %zu events  detect@%llu  "
                    "posthoc %8.1f tests/s  streaming %8.1f tests/s  "
                    "speedup %4.2fx\n",
                    v.scenario->name, v.events,
                    static_cast<unsigned long long>(v.detectionEvents),
                    v.testsPerSec(v.posthocSeconds),
                    v.testsPerSec(v.streamingSeconds), v.speedup());
    }

    // Bounded-window soak: identical traffic at 8k and >= 1M events
    // through the same window, so the two cells differ only in length.
    // Event counts are deliberately NOT scaled by MCVERSI_BENCH_SCALE:
    // the soak-1m floor is part of the contract CI gates on (flat
    // per-event cost, O(window) peak memory). VmHWM is monotone over
    // the process, so the large-8k cell is sampled first and the gate
    // compares the soak cell's peak as a ratio of it.
    const std::size_t kSoakWindow = 4096;
    std::vector<SoakCell> soak;
    soak.push_back(
        runSoak("large-8k", 8, 64, 8192, kSoakWindow, 707, 20));
    soak.push_back(runSoak("soak-1m", 8, 64, std::uint64_t{1} << 20,
                           kSoakWindow, 808, 3));
    for (const SoakCell &c : soak) {
        std::printf("soak       %-10s %7llu events  %2d passes  "
                    "%8.4f us/event  live-high %zu  peak-rss %zu KiB\n",
                    c.name, static_cast<unsigned long long>(c.events),
                    c.passes, c.usPerEvent(), c.liveHighWater,
                    c.peakRssKb);
    }

    const char *path = std::getenv("MCVERSI_BENCH_JSON");
    const std::string out = path ? path : "BENCH_checker.json";
    // Refuse to clobber the curated baseline-vs-current comparison
    // checked in at the repository root (same default filename).
    if (std::ifstream existing(out, std::ios::binary); existing) {
        std::string head(256, '\0');
        existing.read(head.data(),
                      static_cast<std::streamsize>(head.size()));
        if (head.find("checker_throughput_comparison") !=
            std::string::npos) {
            std::fprintf(stderr,
                         "%s holds the curated comparison artifact; "
                         "set MCVERSI_BENCH_JSON to another path\n",
                         out.c_str());
            return 1;
        }
    }
    std::ofstream file(out, std::ios::binary);
    file << toJson(results, rs, consistent, violation, gate_checks,
                   windowed_checks, soak, kSoakWindow);
    if (!file) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
