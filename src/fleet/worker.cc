#include "fleet/worker.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "campaign/runner.hh"
#include "fleet/wire.hh"

namespace mcversi::fleet {

namespace {

volatile std::sig_atomic_t g_stopRequested = 0;

void
onTerm(int)
{
    g_stopRequested = 1;
}

bool
readAll(int fd, void *data, std::size_t size)
{
    auto *bytes = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, bytes + got, size - got);
        if (n < 0) {
            if (errno == EINTR) {
                if (g_stopRequested)
                    return false;
                continue;
            }
            return false;
        }
        if (n == 0)
            return false; // EOF: coordinator closed the request pipe.
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const char *>(data);
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::write(fd, bytes + written, size - written);
        if (n < 0) {
            if (errno == EINTR && !g_stopRequested)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Test hook: MCVERSI_FLEET_TEST_HANG_CELL=<i> makes every attempt on
 * cell i hang forever (until the coordinator's cell-timeout kill);
 * MCVERSI_FLEET_TEST_HANG_MAX_ATTEMPT=<k> limits the hang to attempts
 * <= k so retry-then-succeed paths are testable. Only the fleet's own
 * robustness tests set these.
 */
bool
testHookShouldHang(std::uint32_t cell, std::uint32_t attempt)
{
    const char *hang = std::getenv("MCVERSI_FLEET_TEST_HANG_CELL");
    if (hang == nullptr || std::strtoul(hang, nullptr, 10) != cell)
        return false;
    const char *max_attempt =
        std::getenv("MCVERSI_FLEET_TEST_HANG_MAX_ATTEMPT");
    if (max_attempt != nullptr &&
        attempt > std::strtoul(max_attempt, nullptr, 10)) {
        return false;
    }
    return true;
}

} // namespace

int
runWorkerLoop(const WorkerConfig &config,
              const std::vector<campaign::CampaignSpec> &specs)
{
    // SIGTERM requests a clean drain; SIGINT is the coordinator's
    // signal (a terminal Ctrl-C reaches the whole process group, and
    // the coordinator shuts its workers down itself).
    struct sigaction sa{};
    sa.sa_handler = onTerm;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGINT, SIG_IGN);
    ::signal(SIGPIPE, SIG_IGN);

    for (;;) {
        std::uint32_t frame[2];
        if (!readAll(config.requestFd, frame, sizeof(frame)))
            return g_stopRequested ? 0 : 0;
        const std::uint32_t cell = frame[0];
        const std::uint32_t attempt = frame[1];
        if (cell >= specs.size()) {
            std::fprintf(stderr,
                         "fleet worker: cell index %u out of range "
                         "(%zu cells)\n",
                         cell, specs.size());
            return 2;
        }
        if (testHookShouldHang(cell, attempt)) {
            std::fprintf(stderr,
                         "fleet worker: test hook hanging on cell %u "
                         "attempt %u\n",
                         cell, attempt);
            std::fflush(stderr);
            for (;;)
                ::pause();
        }

        CellRecord record;
        record.cell = cell;
        record.attempt = attempt;
        record.spec = specs[cell].toString();
        record.result = campaign::CampaignRunner::runOne(
            specs[cell], config.evalThreads,
            []() { return g_stopRequested != 0; });
        if (g_stopRequested) {
            // The campaign was cut short by SIGTERM: the result is
            // partial, so it must never reach the journal.
            return 0;
        }
        const std::string payload = encodeCell(record);
        const std::uint32_t length =
            static_cast<std::uint32_t>(payload.size());
        if (!writeAll(config.responseFd, &length, sizeof(length)) ||
            !writeAll(config.responseFd, payload.data(),
                      payload.size())) {
            return g_stopRequested ? 0 : 3;
        }
    }
}

} // namespace mcversi::fleet
