/**
 * @file
 * Steady-state genetic algorithm (§5.2.1).
 *
 * Both McVerSi-ALL and McVerSi-Std.XO implement a steady-state GA with
 * tournament selection and the delete-oldest replacement strategy
 * (steady-state GAs outperform generational GAs in non-stationary
 * environments, which a continuously-running simulation is).
 *
 * The GA is decoupled from the simulator: callers pull the next test to
 * evaluate via nextTest() and push back the evaluation result via
 * reportResult(). The first `population` calls yield random individuals
 * (the initial population); afterwards every test is an offspring of two
 * tournament-selected parents.
 *
 * This is the serial reference engine; the production path is the
 * island-model EvolutionEngine (gp/evolution.hh), which reduces to this
 * exact evaluation sequence for islands=1 with a batch of one.
 *
 * Contract: nextTest() and reportResult() strictly alternate. In debug
 * and sanitizer builds a violation throws std::logic_error naming the
 * offending call (see common/strict.hh); release builds keep the
 * assert-only behavior.
 */

#ifndef MCVERSI_GP_GA_HH
#define MCVERSI_GP_GA_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "gp/crossover.hh"
#include "gp/ndmetrics.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** One evaluated member of the population. */
struct Individual
{
    Test test;
    double fitness = 0.0;
    NdInfo nd;
    /** Monotone birth counter for delete-oldest replacement. */
    std::uint64_t bornAt = 0;
};

/** Steady-state GA with tournament selection and delete-oldest. */
class SteadyStateGa
{
  public:
    /** Crossover operator variant (alias of the shared gp::XoMode). */
    using XoMode = gp::XoMode;

    SteadyStateGa(GaParams ga, GenParams gen, std::uint64_t seed,
                  XoMode mode = XoMode::Selective)
        : ga_(ga), gen_(gen), rng_(seed), mode_(mode)
    {
    }

    /**
     * Produce the next test to evaluate. Must be followed by exactly one
     * reportResult() call before the next invocation.
     */
    Test nextTest();

    /** Report the evaluation result of the test from nextTest(). */
    void reportResult(double fitness, NdInfo nd);

    std::size_t populationSize() const { return population_.size(); }
    std::uint64_t evaluated() const { return evaluated_; }
    const std::vector<Individual> &population() const
    {
        return population_;
    }

    /** Mean fitness of the current population (0 if empty). */
    double meanFitness() const;

    /** Mean NDT of the current population (0 if empty). */
    double meanNdt() const;

    XoMode mode() const { return mode_; }

  private:
    /** Tournament of size ga_.tournamentSize; returns population index. */
    std::size_t tournamentSelect();

    GaParams ga_;
    RandomTestGen gen_;
    Rng rng_;
    XoMode mode_;

    std::vector<Individual> population_;
    Test pending_;
    bool hasPending_ = false;
    std::uint64_t evaluated_ = 0;
    std::uint64_t births_ = 0;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_GA_HH
