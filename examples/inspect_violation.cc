/**
 * @file
 * Example: white-box debugging of a found violation.
 *
 * Demonstrates the extra observability simulation gives (§1: "the
 * added observability in simulation makes debugging more
 * straightforward"): when the harness finds a violating execution,
 * this example re-runs the same test deterministically, dumps the
 * violating cycle, the involved events, and per-event conflict-order
 * context from the candidate execution object.
 *
 * Usage: inspect_violation [bug-name] [seed]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::string bug_name = argc > 1 ? argv[1] : "LQ+no-TSO";
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 5;

    const sim::BugId bug = sim::bugByName(bug_name);
    if (bug == sim::BugId::None) {
        std::cerr << "unknown bug: " << bug_name << "\n";
        return 1;
    }

    sim::SystemConfig cfg;
    cfg.bug = bug;
    cfg.seed = seed;
    cfg.protocol = sim::bugInfo(bug).protocol == sim::ProtocolKind::Tsocc
                       ? sim::Protocol::Tsocc
                       : sim::Protocol::Mesi;
    sim::System system(cfg);
    mc::Checker checker(mc::makeTso());

    gp::GenParams gen;
    gen.testSize = 192;
    gen.iterations = 4;
    gen.memSize = 1024;

    host::Workload::Params wl;
    wl.iterations = gen.iterations;
    host::Workload workload(system, checker, host::layoutFor(gen), wl);

    gp::RandomTestGen rtg(gen);
    Rng rng(seed);

    for (int t = 0; t < 2000; ++t) {
        gp::Test test = rtg.randomTest(rng);
        host::RunResult r = workload.runTest(test);
        if (!r.bugDetected())
            continue;

        std::cout << "violation in test " << t << " (iteration "
                  << r.violationIteration << "):\n"
                  << r.describe() << "\n\n";

        if (r.violation && !r.checkResult.cycle.empty()) {
            const mc::ExecWitness &ew = system.witness();
            std::cout << "conflict-order context for the cycle "
                         "events:\n";
            for (const mc::EventId id : r.checkResult.cycle) {
                const mc::Event &ev = ew.event(id);
                std::cout << "  " << ev.toString() << "\n";
                if (ev.isRead()) {
                    const mc::EventId src = ew.rfSource(id);
                    if (src != mc::kNoEvent) {
                        std::cout << "    rf source: "
                                  << ew.event(src).toString() << "\n";
                    }
                } else {
                    const mc::EventId pred = ew.coPredecessor(id);
                    const mc::EventId succ = ew.coSuccessor(id);
                    if (pred != mc::kNoEvent)
                        std::cout << "    co after:  "
                                  << ew.event(pred).toString() << "\n";
                    if (succ != mc::kNoEvent)
                        std::cout << "    co before: "
                                  << ew.event(succ).toString() << "\n";
                }
            }
            std::cout << "\nnd info: NDT=" << r.nd.ndt << ", "
                      << r.nd.fitaddrs.size() << " fit addresses\n";
        }
        return 0;
    }
    std::cout << "no violation found (unexpected for " << bug_name
              << ")\n";
    return 1;
}
