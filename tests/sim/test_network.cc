/** @file Mesh network tests: routing, ordering, reordering. */

#include <map>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sim/network.hh"

using namespace mcversi::sim;
using mcversi::Rng;
using mcversi::Tick;

namespace {

class Sink : public MsgHandler
{
  public:
    void handleMsg(const Msg &msg) override { received.push_back(msg); }
    std::vector<Msg> received;
};

Msg
makeMsg(MsgType t, NodeId src, NodeId dst, Vnet vnet)
{
    Msg m;
    m.type = t;
    m.src = src;
    m.dst = dst;
    m.vnet = vnet;
    return m;
}

} // namespace

TEST(Network, DeliversToRegisteredHandler)
{
    EventQueue eq;
    Network net(eq, Rng(1));
    Sink sink;
    net.registerNode(5, &sink);
    net.send(makeMsg(MsgType::GETS, 0, 5, Vnet::Request));
    eq.runUntilQuiescent();
    ASSERT_EQ(sink.received.size(), 1u);
    EXPECT_EQ(sink.received[0].type, MsgType::GETS);
    EXPECT_EQ(net.messagesSent(), 1u);
}

TEST(Network, UnknownNodeThrows)
{
    EventQueue eq;
    Network net(eq, Rng(1));
    EXPECT_THROW(net.send(makeMsg(MsgType::GETS, 0, 99, Vnet::Request)),
                 std::runtime_error);
}

TEST(Network, HopsManhattan)
{
    EventQueue eq;
    Network net(eq, Rng(1));
    // 4x2 mesh: node 0 at (0,0), node 7 at (3,1); +1 local hop.
    EXPECT_EQ(net.hops(0, 7), 5);
    EXPECT_EQ(net.hops(0, 0), 1);
    // L2 tile colocated with its core.
    EXPECT_EQ(net.hops(0, l2Node(0)), 1);
    EXPECT_EQ(net.hops(3, l2Node(0)), 4);
    // Memory at the east edge.
    EXPECT_GE(net.hops(0, kMemNode), 5);
}

TEST(Network, PointToPointFifoWithinVnet)
{
    EventQueue eq;
    Rng rng(2);
    Network net(eq, rng);
    Sink sink;
    net.registerNode(1, &sink);
    for (int i = 0; i < 50; ++i) {
        Msg m = makeMsg(MsgType::GETS, 0, 1, Vnet::Request);
        m.ackCount = i; // payload marker
        net.send(m);
    }
    eq.runUntilQuiescent();
    ASSERT_EQ(sink.received.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sink.received[static_cast<std::size_t>(i)].ackCount, i)
            << "vnet FIFO order violated";
}

TEST(Network, CrossVnetReorderingPossible)
{
    // Messages on different vnets between the same endpoints can be
    // reordered: send many (Data@Response, Inv@Fwd) pairs and require
    // at least one Inv to overtake its Data (the Peekaboo enabler).
    EventQueue eq;
    Rng rng(3);
    Network net(eq, rng);
    bool overtaken = false;
    for (int trial = 0; trial < 200 && !overtaken; ++trial) {
        Sink sink;
        net.registerNode(1, &sink);
        Msg data = makeMsg(MsgType::Data, 100, 1, Vnet::Response);
        Msg inv = makeMsg(MsgType::Inv, 100, 1, Vnet::Fwd);
        net.send(data);
        net.send(inv);
        eq.runUntilQuiescent();
        ASSERT_EQ(sink.received.size(), 2u);
        if (sink.received[0].type == MsgType::Inv)
            overtaken = true;
    }
    EXPECT_TRUE(overtaken);
}

TEST(Network, LatencyGrowsWithDistance)
{
    EventQueue eq;
    Network::Params params;
    params.maxJitter = 0;
    Network net(eq, Rng(4), params);
    Sink near_sink;
    Sink far_sink;
    net.registerNode(1, &near_sink);
    net.registerNode(7, &far_sink);

    Tick near_tick = 0;
    Tick far_tick = 0;
    {
        EventQueue eq2;
        Network net2(eq2, Rng(4), params);
        net2.registerNode(1, &near_sink);
        net2.send(makeMsg(MsgType::GETS, 0, 1, Vnet::Request));
        eq2.runUntilQuiescent();
        near_tick = eq2.now();
    }
    {
        EventQueue eq3;
        Network net3(eq3, Rng(4), params);
        net3.registerNode(7, &far_sink);
        net3.send(makeMsg(MsgType::GETS, 0, 7, Vnet::Request));
        eq3.runUntilQuiescent();
        far_tick = eq3.now();
    }
    EXPECT_GT(far_tick, near_tick);
}

TEST(Network, MsgToStringMentionsType)
{
    Msg m = makeMsg(MsgType::FwdGETX, 0, 1, Vnet::Fwd);
    EXPECT_NE(m.toString().find("FwdGETX"), std::string::npos);
}

TEST(Network, UnknownNodeErrorIncludesMessageContext)
{
    EventQueue eq;
    Network net(eq, Rng(1));
    try {
        net.send(makeMsg(MsgType::FwdGETX, 0, 99, Vnet::Fwd));
        FAIL() << "expected a routing error";
    } catch (const std::runtime_error &err) {
        // The error must identify the message, not just the node id.
        EXPECT_NE(std::string(err.what()).find("FwdGETX"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("99"), std::string::npos)
            << err.what();
    }
}

/**
 * Property: per-(src, dst, vnet) FIFO order holds for every key under
 * randomized jitter and randomized interleaving of many concurrent
 * streams -- the ordering contract both protocols are built on.
 */
TEST(Network, FifoPropertyPerKeyUnderRandomJitter)
{
    EventQueue eq;
    Rng rng(20260728);
    Network net(eq, Rng(99));

    constexpr int kDsts = 4;
    std::vector<Sink> sinks(kDsts);
    for (NodeId d = 0; d < kDsts; ++d)
        net.registerNode(d, &sinks[static_cast<std::size_t>(d)]);
    Sink l2sink;
    net.registerNode(l2Node(2), &l2sink);

    // Sequence counter per (src, dst, vnet); ackCount carries it.
    std::map<std::tuple<NodeId, NodeId, int>, int> sent;
    const Vnet vnets[] = {Vnet::Request, Vnet::Response, Vnet::Fwd};

    for (int i = 0; i < 2000; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(8));
        const bool to_l2 = rng.below(5) == 0;
        const NodeId dst =
            to_l2 ? l2Node(2) : static_cast<NodeId>(rng.below(kDsts));
        const Vnet vnet = vnets[rng.below(3)];
        Msg m = makeMsg(MsgType::GETS, src, dst, vnet);
        m.ackCount = sent[{src, dst, static_cast<int>(vnet)}]++;
        net.send(m);
        if (rng.below(4) == 0)
            eq.runUntilQuiescent(); // Interleave drains with sends.
    }
    eq.runUntilQuiescent();

    std::map<std::tuple<NodeId, NodeId, int>, int> seen;
    auto check = [&seen](const Sink &sink) {
        for (const Msg &m : sink.received) {
            auto key = std::make_tuple(m.src, m.dst,
                                       static_cast<int>(m.vnet));
            EXPECT_EQ(m.ackCount, seen[key]++)
                << "FIFO violated for key (" << m.src << "," << m.dst
                << "," << static_cast<int>(m.vnet) << ")";
        }
    };
    for (const Sink &sink : sinks)
        check(sink);
    check(l2sink);

    std::size_t delivered = l2sink.received.size();
    for (const Sink &sink : sinks)
        delivered += sink.received.size();
    EXPECT_EQ(delivered, 2000u);
}

/**
 * Cross-vnet reordering reachability: a Fwd-vnet invalidation must be
 * able to overtake an earlier Response-vnet data message between the
 * same endpoints (the "Peekaboo" IS_I window documented in
 * message.hh), and the data must still arrive afterwards -- reordering
 * across vnets, never loss.
 */
TEST(Network, FwdOvertakesResponseReachably)
{
    EventQueue eq;
    Rng rng(7);
    Network net(eq, rng);
    int overtakes = 0;
    constexpr int kTrials = 300;
    for (int trial = 0; trial < kTrials; ++trial) {
        Sink sink;
        net.registerNode(1, &sink);
        Msg data = makeMsg(MsgType::Data, l2Node(1), 1, Vnet::Response);
        Msg inv = makeMsg(MsgType::Inv, l2Node(1), 1, Vnet::Fwd);
        net.send(data);
        net.send(inv);
        eq.runUntilQuiescent();
        ASSERT_EQ(sink.received.size(), 2u);
        if (sink.received[0].type == MsgType::Inv) {
            ++overtakes;
            EXPECT_EQ(sink.received[1].type, MsgType::Data);
        }
    }
    // Jitter is +/-5 on identical routes: overtaking must be reachable
    // but not certain.
    EXPECT_GT(overtakes, 0);
    EXPECT_LT(overtakes, kTrials);
}
