#include "litmus/diy.hh"

#include <algorithm>
#include <set>

namespace mcversi::litmus {

const char *
edgeName(EdgeType e)
{
    switch (e) {
      case EdgeType::Rfe: return "Rfe";
      case EdgeType::Fre: return "Fre";
      case EdgeType::Coe: return "Coe";
      case EdgeType::PodRR: return "PodRR";
      case EdgeType::PodRW: return "PodRW";
      case EdgeType::PodWW: return "PodWW";
      case EdgeType::MFencedWR: return "MFencedWR";
      case EdgeType::PodWR: return "PodWR";
    }
    return "?";
}

bool
isCommEdge(EdgeType e)
{
    return e == EdgeType::Rfe || e == EdgeType::Fre ||
           e == EdgeType::Coe;
}

bool
edgeSrcIsWrite(EdgeType e)
{
    switch (e) {
      case EdgeType::Rfe:
      case EdgeType::Coe:
      case EdgeType::PodWW:
      case EdgeType::MFencedWR:
      case EdgeType::PodWR:
        return true;
      default:
        return false;
    }
}

bool
edgeDstIsWrite(EdgeType e)
{
    switch (e) {
      case EdgeType::Fre:
      case EdgeType::Coe:
      case EdgeType::PodRW:
      case EdgeType::PodWW:
        return true;
      default:
        return false;
    }
}

std::string
cycleName(const CycleSpec &spec)
{
    std::string name;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        if (i)
            name += " ";
        name += edgeName(spec[i]);
    }
    return name;
}

namespace {

bool
adjacencyOk(const CycleSpec &spec)
{
    const std::size_t n = spec.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (edgeDstIsWrite(spec[i]) !=
            edgeSrcIsWrite(spec[(i + 1) % n])) {
            return false;
        }
    }
    return true;
}

bool
structureOk(const CycleSpec &spec)
{
    const std::size_t n = spec.size();
    if (n < 4)
        return false;
    if (!isCommEdge(spec[n - 1]))
        return false;
    std::size_t comm = 0;
    std::size_t po = 0;
    for (EdgeType e : spec)
        (isCommEdge(e) ? comm : po) += 1;
    if (comm < 2 || po < 2)
        return false;
    return adjacencyOk(spec);
}

/** Canonical rotation: lexicographically smallest ending in comm. */
CycleSpec
canonicalize(const CycleSpec &spec)
{
    const std::size_t n = spec.size();
    CycleSpec best;
    for (std::size_t r = 0; r < n; ++r) {
        if (!isCommEdge(spec[(r + n - 1) % n]))
            continue;
        CycleSpec rot;
        rot.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            rot.push_back(spec[(r + i) % n]);
        if (best.empty() || rot < best)
            best = rot;
    }
    return best.empty() ? spec : best;
}

} // namespace

std::optional<LitmusTest>
buildTest(const CycleSpec &spec, Addr addr_stride)
{
    if (!structureOk(spec))
        return std::nullopt;
    const std::size_t n = spec.size();

    // Event attributes from the walk.
    std::vector<bool> is_write(n);
    std::vector<int> tid(n);
    std::vector<std::size_t> aidx(n);
    std::size_t num_po = 0;
    for (EdgeType e : spec)
        if (!isCommEdge(e))
            ++num_po;

    int cur_tid = 0;
    std::size_t cur_aidx = 0;
    for (std::size_t i = 0; i < n; ++i) {
        is_write[i] = edgeSrcIsWrite(spec[i]);
        tid[i] = cur_tid;
        aidx[i] = cur_aidx % num_po;
        if (isCommEdge(spec[i])) {
            ++cur_tid;
        } else {
            ++cur_aidx;
        }
    }
    const int num_threads = cur_tid;

    // Emit per-thread ops; record each event's (pid, slot).
    std::vector<std::vector<gp::Node>> thread_ops(
        static_cast<std::size_t>(num_threads));
    std::vector<int> slot(n);
    std::size_t next_scratch = num_po;
    for (std::size_t i = 0; i < n; ++i) {
        auto &ops = thread_ops[static_cast<std::size_t>(tid[i])];
        gp::Node node;
        node.pid = tid[i];
        node.op.kind =
            is_write[i] ? gp::OpKind::Write : gp::OpKind::Read;
        node.op.addr = static_cast<Addr>(aidx[i]) * addr_stride;
        slot[i] = static_cast<int>(ops.size());
        ops.push_back(node);
        // A fence edge inserts an RMW to a private scratch location
        // between this event and the next one of the same thread.
        if (spec[i] == EdgeType::MFencedWR) {
            gp::Node fence;
            fence.pid = tid[i];
            fence.op.kind = gp::OpKind::ReadModifyWrite;
            fence.op.addr =
                static_cast<Addr>(next_scratch++) * addr_stride;
            ops.push_back(fence);
        }
    }

    LitmusTest out;
    out.name = cycleName(spec);
    out.numThreads = num_threads;
    out.numAddrs = static_cast<int>(next_scratch);

    std::vector<gp::Node> flat;
    for (const auto &ops : thread_ops)
        for (const gp::Node &node : ops)
            flat.push_back(node);
    out.test = gp::Test(std::move(flat));

    // Conditions from communication edges.
    for (std::size_t i = 0; i < n; ++i) {
        if (!isCommEdge(spec[i]))
            continue;
        const std::size_t j = (i + 1) % n;
        CondAtom atom;
        switch (spec[i]) {
          case EdgeType::Rfe:
            atom.kind = CondAtom::Kind::ReadsFrom;
            atom.pid = tid[j];
            atom.slot = slot[j];
            atom.otherPid = tid[i];
            atom.otherSlot = slot[i];
            break;
          case EdgeType::Fre:
            atom.kind = CondAtom::Kind::ReadsBefore;
            atom.pid = tid[i];
            atom.slot = slot[i];
            atom.otherPid = tid[j];
            atom.otherSlot = slot[j];
            break;
          case EdgeType::Coe:
            atom.kind = CondAtom::Kind::CoBefore;
            atom.pid = tid[i];
            atom.slot = slot[i];
            atom.otherPid = tid[j];
            atom.otherSlot = slot[j];
            break;
          default:
            break;
        }
        out.forbidden.push_back(atom);
    }
    return out;
}

namespace {

constexpr EdgeType kAlphabet[] = {
    EdgeType::Rfe,   EdgeType::Fre,   EdgeType::Coe,
    EdgeType::PodRR, EdgeType::PodRW, EdgeType::PodWW,
    EdgeType::MFencedWR,
};

} // namespace

std::vector<CycleSpec>
enumerateCycles(std::size_t max_len, std::size_t max_tests)
{
    std::set<CycleSpec> seen;
    std::vector<CycleSpec> out;

    CycleSpec cur;
    // Depth-first enumeration with adjacency pruning.
    auto rec = [&](auto &&self, std::size_t target_len) -> void {
        if (cur.size() == target_len) {
            if (!structureOk(cur))
                return;
            // Only accept the canonical rotation itself; every
            // rotation class is enumerated, so none are lost.
            CycleSpec canon = canonicalize(cur);
            if (cur == canon && seen.insert(canon).second)
                out.push_back(canon);
            return;
        }
        for (EdgeType e : kAlphabet) {
            if (!cur.empty() &&
                edgeDstIsWrite(cur.back()) != edgeSrcIsWrite(e)) {
                continue;
            }
            cur.push_back(e);
            self(self, target_len);
            cur.pop_back();
        }
    };

    for (std::size_t len = 4; len <= max_len; ++len) {
        rec(rec, len);
        if (out.size() >= max_tests)
            break;
    }
    if (out.size() > max_tests)
        out.resize(max_tests);
    return out;
}

} // namespace mcversi::litmus
