/**
 * @file
 * Polynomial-time MCM checker over a recorded candidate execution (§4.1).
 *
 * With full conflict-order visibility (rf and co observed, fr derived),
 * checking reduces to:
 *
 *   1. witness well-formedness (no unknown values, co total per address),
 *   2. sc-per-location: acyclic(po-loc | rf | co | fr),
 *   3. RMW atomicity: the write of an atomic pair immediately
 *      co-follows the read's rf source,
 *   4. global happens-before: acyclic(ppo | fences | rf[e] | co | fr),
 *
 * each a single DFS over generator edges.
 */

#ifndef MCVERSI_MEMCONSISTENCY_CHECKER_HH
#define MCVERSI_MEMCONSISTENCY_CHECKER_HH

#include <memory>
#include <string>
#include <vector>

#include "memconsistency/arch.hh"
#include "memconsistency/execwitness.hh"

namespace mcversi::mc {

/** Verdict of checking one candidate execution. */
struct CheckResult
{
    enum class Kind : std::uint8_t {
        Ok,
        /** Witness ill-formed (unknown value / co fork): data-loss bug. */
        WitnessAnomaly,
        /** Per-location coherence violated. */
        UniprocViolation,
        /** Atomic RMW pair not atomic. */
        AtomicityViolation,
        /** Global happens-before cycle: the MCM proper is violated. */
        GhbViolation,
    };

    Kind kind = Kind::Ok;
    std::string message;
    /** Events on the offending cycle (empty for non-cycle violations). */
    std::vector<EventId> cycle;

    bool ok() const { return kind == Kind::Ok; }
    static const char *kindName(Kind k);
};

/** Checks executions against one architecture. */
class Checker
{
  public:
    explicit Checker(std::unique_ptr<Architecture> arch)
        : arch_(std::move(arch))
    {
    }

    /**
     * Check one candidate execution; first violated constraint wins.
     * Finalizes the witness (resolves conflict orders) if needed.
     */
    CheckResult check(ExecWitness &ew) const;

    const Architecture &arch() const { return *arch_; }

  private:
    CheckResult checkUniproc(const ExecWitness &ew) const;
    CheckResult checkAtomicity(const ExecWitness &ew) const;
    CheckResult checkGhb(const ExecWitness &ew) const;

    static CheckResult cycleResult(CheckResult::Kind kind,
                                   const ExecWitness &ew,
                                   const std::vector<CycleGraph::Node> &cyc,
                                   const std::string &constraint);

    std::unique_ptr<Architecture> arch_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_CHECKER_HH
