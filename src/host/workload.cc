#include "host/workload.hh"

#include <chrono>
#include <stdexcept>

#include "memconsistency/models/engine.hh"
#include "sim/fault.hh"

namespace mcversi::host {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

sim::InstrKind
toInstrKind(gp::OpKind kind)
{
    switch (kind) {
      case gp::OpKind::Read: return sim::InstrKind::Load;
      case gp::OpKind::ReadAddrDp: return sim::InstrKind::LoadAddrDep;
      case gp::OpKind::Write: return sim::InstrKind::Store;
      case gp::OpKind::ReadModifyWrite: return sim::InstrKind::Rmw;
      case gp::OpKind::CacheFlush: return sim::InstrKind::Flush;
      case gp::OpKind::Delay: return sim::InstrKind::Delay;
    }
    return sim::InstrKind::Delay;
}

} // namespace

std::string
RunResult::describe() const
{
    if (protocolError)
        return "protocol error: " + protocolErrorInfo;
    if (violation) {
        return std::string("MCM violation (") +
               mc::CheckResult::kindName(checkResult.kind) +
               "): " + checkResult.message;
    }
    if (conditionHit)
        return "litmus forbidden outcome observed";
    return "ok";
}

Workload::Workload(sim::System &system, mc::Checker &checker,
                   TestMemLayout layout, Params params)
    : system_(system), checker_(checker), services_(system),
      params_(params)
{
    services_.markTestMemRange(layout);
    syncStreamingChecker();
}

void
Workload::setParams(Params p)
{
    params_ = p;
    syncStreamingChecker();
}

void
Workload::syncStreamingChecker()
{
    if (params_.checkMode != mc::CheckMode::Streaming) {
        streaming_.reset();
        return;
    }
    if (streaming_ != nullptr)
        return;
    const auto *model =
        dynamic_cast<const mc::ProfileModel *>(&checker_.arch());
    if (model == nullptr) {
        throw std::invalid_argument(
            "check-mode=streaming requires a profile-interpreted model "
            "(ProfileModel); model '" +
            checker_.arch().name() + "' is not one");
    }
    streaming_ = std::make_unique<mc::StreamingChecker>(model->profile());
}

std::vector<sim::Program>
Workload::emitPrograms(const gp::Test &test,
                       gp::ThreadSlots &slot_tables) const
{
    const TestMemLayout &layout = services_.layout();
    const int num_threads = system_.numCores();
    test.threadSlots(num_threads, slot_tables);

    std::vector<sim::Program> programs(
        static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
        sim::Program &prog = programs[static_cast<std::size_t>(t)];
        prog.mapLogical = [layout](Addr logical) {
            return layout.toPhys(logical);
        };
        prog.memSize = layout.memSize();
        prog.stride = layout.stride();
        for (const std::size_t node_idx : slot_tables.thread(t)) {
            const gp::Op &op = test.node(node_idx).op;
            sim::ProgInstr instr;
            instr.kind = toInstrKind(op.kind);
            instr.logical = op.addr;
            instr.addr = op.isMem() ? layout.toPhys(op.addr) : 0;
            instr.delay = op.delay;
            prog.instrs.push_back(instr);
        }
    }
    return programs;
}

gp::StaticEventId
Workload::staticIdOf(const mc::Event &ev,
                     const gp::ThreadSlots &slots) const
{
    if (ev.isInit()) {
        const Addr logical = services_.layout().toLogical(ev.addr);
        return gp::initStaticEventId(logical);
    }
    const auto thread = slots.thread(ev.iiid.pid);
    const std::size_t node_idx =
        thread[static_cast<std::size_t>(ev.iiid.poi)];
    return gp::staticEventId(node_idx, ev.sub);
}

void
Workload::accumulateNd(const mc::ExecWitness &witness,
                       const gp::ThreadSlots &slots)
{
    const TestMemLayout &layout = services_.layout();
    auto add = [&](mc::EventId from, mc::EventId to) {
        const mc::Event &producer = witness.event(from);
        const mc::Event &consumer = witness.event(to);
        const gp::StaticEventId psid = staticIdOf(producer, slots);
        const gp::StaticEventId csid = staticIdOf(consumer, slots);
        nd_.addEdge(psid, csid);
        if (!consumer.isInit() && layout.contains(consumer.addr)) {
            nd_.noteEventAddr(csid, layout.toLogical(consumer.addr));
        }
    };
    // rf and co edges, streamed from the witness's dense per-event
    // arrays: every read is the target of one rf edge from its source,
    // every write with a co-predecessor the target of one co edge.
    const auto num_events = static_cast<mc::EventId>(witness.numEvents());
    for (mc::EventId e = 0; e < num_events; ++e) {
        if (witness.event(e).isRead()) {
            const mc::EventId src = witness.rfSource(e);
            if (src != mc::kNoEvent)
                add(src, e);
        } else {
            const mc::EventId pred = witness.coPredecessor(e);
            if (pred != mc::kNoEvent)
                add(pred, e);
        }
    }
}

RunResult
Workload::runTest(const gp::Test &test, const ConditionFn &condition)
{
    const auto t0 = std::chrono::steady_clock::now();
    RunResult result;

    std::vector<sim::Program> programs =
        emitPrograms(test, slotScratch_);

    // make_test_thread: host writes each thread's code.
    for (Pid p = 0; p < static_cast<Pid>(system_.numCores()); ++p)
        services_.makeTestThread(p, programs[static_cast<std::size_t>(p)]);

    nd_.beginRun(test.countEvents());
    system_.coverage().beginRun();
    result.preRunCounts = system_.coverage().preRunCounts();

    const Tick ticks0 = system_.eventQueue().now();
    const std::uint64_t kernel_events0 = system_.eventQueue().processed();
    const std::uint64_t messages0 = system_.network().messagesSent();
    const mc::VerdictCache *verdict_cache = checker_.verdictCache();
    const std::uint64_t distinct0 =
        verdict_cache != nullptr ? verdict_cache->stats().distinct : 0;

    system_.witness().setEventSink(streaming_ != nullptr
                                       ? streaming_.get()
                                       : nullptr);

    // Bounded-window recording (soak runs): streaming mode only, and
    // incompatible with litmus conditions, which inspect the finalized
    // witness every iteration. The witness must be empty before its
    // window can change, so clear last run's leftover events first.
    const std::size_t window =
        streaming_ != nullptr && condition == nullptr
            ? params_.witnessWindow
            : 0;
    system_.witness().reset();
    system_.witness().setWindow(window);
    if (streaming_ != nullptr)
        streaming_->setWindow(window);

    for (int iter = 0; iter < params_.iterations; ++iter) {
        // reset_test_mem: initial values + cache flush.
        services_.resetTestMem();
        system_.witness().reset();
        if (streaming_ != nullptr) {
            streaming_->begin();
            streaming_->setThrowOnViolation(true);
        }

        if (params_.guestOverhead > 0) {
            // Guest-side setup (software barrier arrival, test-memory
            // reset loops) consumes simulated time before any thread
            // can be released.
            system_.eventQueue().scheduleFnIn(
                params_.guestOverhead,
                [](void *, std::uint64_t, std::uint64_t, std::uint64_t,
                   std::uint64_t) {},
                nullptr);
            system_.runToQuiescence();
        }

        // barrier_wait_precise + execute code + barrier_wait_coarse.
        services_.barrierWaitPrecise(params_.barrierSkew);
        try {
            services_.barrierWaitCoarse();
        } catch (const sim::ProtocolError &err) {
            result.protocolError = true;
            result.protocolErrorInfo = err.what();
            result.violationIteration = iter;
            result.iterationsRun = iter + 1;
            break;
        } catch (const mc::StreamingViolation &) {
            // Early stop: the streaming checker flagged the violating
            // event mid-simulation. Drop the in-flight simulation
            // state; the witness prefix cannot be finalized (store-
            // forwarded reads may still await their producing writes),
            // so the verdict is rendered from the streaming graphs.
            system_.eventQueue().clearPending();
            system_.resetProtocolState();
            result.eventsExecuted += system_.witness().numEvents();
            result.eventsUntilDetection =
                streaming_->eventsUntilDetection();
            const auto c0 = std::chrono::steady_clock::now();
            mc::CheckResult check =
                streaming_->earlyStopResult(system_.witness());
            result.checkSeconds += secondsSince(c0);
            result.violation = true;
            result.checkResult = std::move(check);
            result.violationIteration = iter;
            result.iterationsRun = iter + 1;
            break;
        } catch (const std::runtime_error &) {
            // Livelock watchdog: the event cap fired (replay storms
            // can self-sustain under extreme conflict). Abandon this
            // iteration: drop all in-flight events and state; the next
            // iteration starts from a clean reset.
            ++result.watchdogAborts;
            system_.eventQueue().clearPending();
            system_.resetProtocolState();
            system_.witness().reset();
            continue;
        }

        result.eventsExecuted += system_.witness().numEvents();
        // A windowed witness cannot finalize; checkStreamed() settles
        // the verdict from the streaming graphs (and the retained ring
        // when diagnostics are needed).
        if (window == 0)
            system_.witness().finalize();

        // verify_reset_conflict / verify_reset_all: check the candidate
        // execution.
        if (params_.checkEveryIteration) {
            const auto c0 = std::chrono::steady_clock::now();
            mc::CheckResult check =
                streaming_ != nullptr
                    ? checker_.checkStreamed(system_.witness(),
                                             *streaming_)
                    : checker_.check(system_.witness());
            result.checkSeconds += secondsSince(c0);
            if (!check.ok()) {
                result.violation = true;
                result.checkResult = std::move(check);
                result.violationIteration = iter;
                result.iterationsRun = iter + 1;
                break;
            }
        }
        if (condition && condition(system_.witness())) {
            result.conditionHit = true;
            result.violationIteration = iter;
            result.iterationsRun = iter + 1;
            break;
        }

        // NDT accumulation walks resolved conflict orders, which a
        // windowed witness does not have. When the ring retained the
        // whole stream, replay and finalize into scratch so the GA's
        // NDT fitness signal (and hence the evolution trajectory)
        // matches unbounded mode exactly; only genuinely truncated
        // streams lose the signal -- conflict orders through evicted
        // events are undecidable.
        if (window == 0) {
            accumulateNd(system_.witness(), slotScratch_);
        } else if (system_.witness().droppedEvents() == 0) {
            system_.witness().replayRetainedInto(ndScratch_);
            ndScratch_.finalize();
            accumulateNd(ndScratch_, slotScratch_);
        }
        result.iterationsRun = iter + 1;
    }

    // Detach the sink: the witness outlives this run and must not call
    // into per-run streaming state from elsewhere.
    system_.witness().setEventSink(nullptr);

    result.simTicks = system_.eventQueue().now() - ticks0;
    result.simEvents = system_.eventQueue().processed() - kernel_events0;
    result.messagesSent = system_.network().messagesSent() - messages0;
    result.coveredTransitions = system_.coverage().endRun();
    if (verdict_cache != nullptr) {
        result.newInterleavings =
            verdict_cache->stats().distinct - distinct0;
    }
    result.nd = nd_.info();
    result.totalSeconds = secondsSince(t0);
    return result;
}

} // namespace mcversi::host
