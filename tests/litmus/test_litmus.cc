/** @file Litmus condition evaluation + runner tests. */

#include <gtest/gtest.h>

#include "litmus/runner.hh"
#include "litmus/suites.hh"

using namespace mcversi;
using namespace mcversi::litmus;

TEST(Litmus, FindEventLocatesByPidSlotAndType)
{
    mc::ExecWitness ew;
    ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    ew.recordRead(0, 1, 0x40, 1);
    ew.finalize();
    EXPECT_NE(findEvent(ew, 0, 0, true), mc::kNoEvent);
    EXPECT_EQ(findEvent(ew, 0, 0, false), mc::kNoEvent);
    EXPECT_NE(findEvent(ew, 0, 1, false), mc::kNoEvent);
    EXPECT_EQ(findEvent(ew, 1, 0, true), mc::kNoEvent);
}

namespace {

/** Build the MP witness with the forbidden outcome. */
mc::ExecWitness
mpForbiddenWitness()
{
    mc::ExecWitness ew;
    // P0: W x (slot 0); W y (slot 1). P1: R y (slot 0) = new;
    // R x (slot 1) = init.
    ew.recordWrite(0, 0, 0x0, 1, kInitVal);
    ew.recordWrite(0, 1, 0x40, 2, kInitVal);
    ew.recordRead(1, 0, 0x40, 2);
    ew.recordRead(1, 1, 0x0, kInitVal);
    ew.finalize();
    return ew;
}

} // namespace

TEST(Litmus, MpConditionMatchesForbiddenOutcome)
{
    LitmusTest mp = messagePassing();
    mc::ExecWitness ew = mpForbiddenWitness();
    EXPECT_TRUE(evalForbidden(mp, ew));
}

TEST(Litmus, MpConditionRejectsAllowedOutcomes)
{
    LitmusTest mp = messagePassing();
    {
        // r(y) = init: allowed.
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x0, 1, kInitVal);
        ew.recordWrite(0, 1, 0x40, 2, kInitVal);
        ew.recordRead(1, 0, 0x40, kInitVal);
        ew.recordRead(1, 1, 0x0, kInitVal);
        ew.finalize();
        EXPECT_FALSE(evalForbidden(mp, ew));
    }
    {
        // Both new: allowed.
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x0, 1, kInitVal);
        ew.recordWrite(0, 1, 0x40, 2, kInitVal);
        ew.recordRead(1, 0, 0x40, 2);
        ew.recordRead(1, 1, 0x0, 1);
        ew.finalize();
        EXPECT_FALSE(evalForbidden(mp, ew));
    }
}

TEST(Litmus, CoBeforeAtomEvaluation)
{
    LitmusTest two = twoPlusTwoW();
    // 2+2W forbidden: co(x): P1's write before P0's, co(y): P0's
    // before P1's... construct the forbidden co orders per the test's
    // own atoms by executing them mentally: simply check an obviously
    // allowed witness does not fire.
    mc::ExecWitness ew;
    ew.recordWrite(0, 0, 0x0, 1, kInitVal);
    ew.recordWrite(0, 1, 0x40, 2, kInitVal);
    ew.recordWrite(1, 0, 0x40, 3, 2);
    ew.recordWrite(1, 1, 0x0, 4, 1);
    ew.finalize();
    EXPECT_FALSE(evalForbidden(two, ew));
}

TEST(Litmus, MissingEventsMeanNoMatch)
{
    LitmusTest mp = messagePassing();
    mc::ExecWitness ew; // empty witness
    EXPECT_FALSE(evalForbidden(mp, ew));
}

TEST(LitmusRunner, CleanSystemFindsNothing)
{
    LitmusRunner::Params params;
    params.system.seed = 3;
    params.iterationsPerRun = 5;
    LitmusRunner runner(params, x86TsoSuite());
    host::Budget budget;
    budget.maxTestRuns = 76; // two passes over the suite
    host::HarnessResult result = runner.run(budget);
    EXPECT_FALSE(result.bugFound);
    EXPECT_EQ(result.testRuns, 76u);
}

TEST(LitmusRunner, FindsSqNoFifo)
{
    // SQ+no-FIFO is litmus-visible (paper: 9/10 found): write-write
    // reordering shows up in co-based conditions.
    LitmusRunner::Params params;
    params.system.bug = sim::BugId::SqNoFifo;
    params.system.seed = 4;
    params.iterationsPerRun = 20;
    LitmusRunner runner(params, x86TsoSuite());
    host::Budget budget;
    budget.maxTestRuns = 3000;
    budget.maxWallSeconds = 120.0;
    host::HarnessResult result = runner.run(budget);
    EXPECT_TRUE(result.bugFound);
    EXPECT_FALSE(result.detail.empty());
}

TEST(LitmusRunner, LqNoTsoNeedsLargeBudgets)
{
    // The paper's diy-litmus needed 5.35 hours for LQ+no-TSO (vs
    // ~seconds for McVerSi): the racy window is nearly impossible to
    // hit with fixed tiny tests. Document that reality: a small budget
    // must neither crash nor false-positive; a find is a bonus.
    LitmusRunner::Params params;
    params.system.bug = sim::BugId::LqNoTso;
    params.system.seed = 5;
    params.iterationsPerRun = 20;
    params.instances = 48;
    LitmusRunner runner(params, x86TsoSuite());
    host::Budget budget;
    budget.maxTestRuns = 400;
    budget.maxWallSeconds = 60.0;
    host::HarnessResult result = runner.run(budget);
    if (result.bugFound) {
        EXPECT_FALSE(result.detail.empty());
    } else {
        EXPECT_GT(result.testRuns, 0u);
    }
}
