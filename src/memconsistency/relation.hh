/**
 * @file
 * A binary relation over events, with the small algebra the checker and
 * the GP non-determinism metrics need (union, composition-lite queries,
 * transitive closure, acyclicity via Graph).
 *
 * EventIds are dense and small (0..numEvents-1 within one witness), so
 * adjacency is stored flat: a vector of per-source successor vectors
 * indexed directly by the source id, each kept sorted and unique.
 * clear() preserves all capacity, so a relation reused across the
 * iterations of a test-run reaches an allocation-free steady state --
 * the property the witness/checker hot path depends on.
 */

#ifndef MCVERSI_MEMCONSISTENCY_RELATION_HH
#define MCVERSI_MEMCONSISTENCY_RELATION_HH

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "memconsistency/event.hh"

namespace mcversi::mc {

/**
 * Binary relation over non-negative EventIds, stored as dense flat
 * adjacency. Insertion is idempotent; size() counts distinct ordered
 * pairs.
 */
class Relation
{
  public:
    /** Sorted successors of one source event. */
    using SuccRange = std::span<const EventId>;

    /**
     * Insert the ordered pair (from, to). Returns true if it was new.
     * Appending successors in ascending order per source (the natural
     * order when iterating events by id) is O(1); out-of-order inserts
     * pay a sorted insertion into the (typically tiny) successor list.
     */
    bool insert(EventId from, EventId to);

    /** True if (from, to) is in the relation. */
    bool contains(EventId from, EventId to) const;

    /** Number of distinct ordered pairs. */
    std::size_t size() const { return numPairs_; }

    bool empty() const { return numPairs_ == 0; }

    /** Remove all pairs, keeping all allocated capacity. */
    void clear();

    /** Successors of @p from in ascending order (empty if none). */
    SuccRange successors(EventId from) const;

    /** Union @p other into this relation. */
    void unionWith(const Relation &other);

    /** All ordered pairs, sorted lexicographically. */
    std::vector<std::pair<EventId, EventId>> pairs() const;

    /**
     * In-degree of each event, indexed by event id (size = one past
     * the largest id mentioned in the relation).
     */
    std::vector<std::size_t> inDegrees() const;

    /**
     * Transitive closure (DFS over reachable sets per source). Intended
     * for tests and small relations; the checker itself uses generator
     * edges plus DFS and never materializes closures.
     */
    Relation transitiveClosure() const;

    /** True if the relation, viewed as a digraph, has no cycle. */
    bool acyclic() const;

    /** True if no (x, x) pair is present. */
    bool irreflexive() const;

    /** Iterate adjacency in ascending source order: f(from, SuccRange). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        const auto bound = static_cast<std::size_t>(maxSource_ + 1);
        for (std::size_t from = 0; from < bound; ++from) {
            if (!adj_[from].empty())
                f(static_cast<EventId>(from), SuccRange(adj_[from]));
        }
    }

  private:
    /** One past the largest node id mentioned as source or target. */
    std::size_t numNodes() const;

    /** Dense adjacency: adj_[from] is the sorted successor list. */
    std::vector<std::vector<EventId>> adj_;
    std::size_t numPairs_ = 0;
    /**
     * Largest source/target ids currently in the relation. Tracked
     * separately from adj_.size(), which only ever grows (clear()
     * preserves capacity).
     */
    EventId maxSource_ = -1;
    EventId maxTarget_ = -1;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_RELATION_HH
