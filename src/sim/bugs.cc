#include "sim/bugs.hh"

#include "common/strings.hh"

namespace mcversi::sim {

const std::vector<BugInfo> &
allBugs()
{
    static const std::vector<BugInfo> bugs = {
        {BugId::MesiLqIsInv, "MESI,LQ+IS,Inv", ProtocolKind::Mesi, true,
         "Coherence protocol fails to forward an invalidation to the LQ "
         "after sinking an Inv in the IS transient state; data consumed "
         "in IS_I is not flagged, so speculative reads are not retried."},
        {BugId::MesiLqSmInv, "MESI,LQ+SM,Inv", ProtocolKind::Mesi, true,
         "Coherence protocol fails to forward an invalidation to the "
         "LSQ in the SM transient state upon receiving an Inv."},
        {BugId::MesiLqEInv, "MESI,LQ+E,Inv", ProtocolKind::Mesi, false,
         "Coherence protocol fails to forward an invalidation to the LQ "
         "in the E state upon receiving a recall-invalidation."},
        {BugId::MesiLqMInv, "MESI,LQ+M,Inv", ProtocolKind::Mesi, false,
         "Coherence protocol fails to forward an invalidation to the LQ "
         "in the M state upon receiving a recall-invalidation."},
        {BugId::MesiLqSReplacement, "MESI,LQ+S,Replacement",
         ProtocolKind::Mesi, false,
         "Coherence protocol fails to forward an invalidation to the LQ "
         "upon replacement in the S state."},
        {BugId::MesiPutxRace, "MESI+PUTX-Race", ProtocolKind::Mesi, true,
         "Protocol race condition and subsequent invalid transition: L2 "
         "lacks the transition for a PUTX from a former owner racing "
         "with a new ownership grant (Komuravelli et al.)."},
        {BugId::MesiReplaceRace, "MESI+Replace-Race", ProtocolKind::Mesi,
         false,
         "L1 replacement in M racing an L2 replacement of a previously "
         "clean block in MT; the L2 does not expect modified data and "
         "fails to write the block back to memory."},
        {BugId::TsoccNoEpochIds, "TSO-CC+no-epoch-ids",
         ProtocolKind::Tsocc, false,
         "Timestamp resets race read/write requests without epoch-ids; "
         "self-invalidation is missed after a reset."},
        {BugId::TsoccCompare, "TSO-CC+compare", ProtocolKind::Tsocc,
         false,
         "Self-invalidation condition uses 'larger' instead of 'larger "
         "or equal' on timestamp-group comparison."},
        {BugId::LqNoTso, "LQ+no-TSO", ProtocolKind::Any, true,
         "LQ does not squash subsequent reads after an incoming "
         "forwarded invalidation from the coherence protocol."},
        {BugId::SqNoFifo, "SQ+no-FIFO", ProtocolKind::Any, false,
         "SQ writes back out of order instead of FIFO."},
    };
    return bugs;
}

const BugInfo &
bugInfo(BugId id)
{
    static const BugInfo none{BugId::None, "none", ProtocolKind::Any,
                              false, "no bug injected"};
    for (const BugInfo &b : allBugs())
        if (b.id == id)
            return b;
    return none;
}

const BugInfo *
findBugByName(const std::string &name)
{
    if (asciiIEquals(name, "none"))
        return &bugInfo(BugId::None);
    for (const BugInfo &b : allBugs())
        if (asciiIEquals(name, b.name))
            return &b;
    return nullptr;
}

BugId
bugByName(const std::string &name)
{
    const BugInfo *info = findBugByName(name);
    return info != nullptr ? info->id : BugId::None;
}

} // namespace mcversi::sim
