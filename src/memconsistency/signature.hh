/**
 * @file
 * Canonical witness signatures for collective checking.
 *
 * Random campaigns re-observe the same interleavings constantly: a
 * verification run of N test-runs x I iterations typically realizes far
 * fewer than N*I *distinct* conflict-order shapes (MTraceCheck's key
 * observation). The checker's verdict is a pure function of the
 * witness's *shape* -- per-thread event sequences (type, rmw, sub,
 * address equality classes), the rf mapping, and the co order -- and is
 * invariant under renaming of event ids, raw addresses, and write
 * values. A WitnessSignature is a 128-bit fingerprint of exactly that
 * shape, so two executions with equal signatures belong to the same
 * checking equivalence class and share one verdict.
 *
 * Canonicalization: events are renumbered by first occurrence -- own
 * position or first conflict reference -- in one (thread,
 * program-order) traversal, and addresses by first touch in the same
 * traversal; init events, which sit outside the thread lists, are
 * named at their first reference. Every quantity hashed is therefore
 * independent of the record order the simulator happened to produce
 * (stores serialize late, init events intern lazily), which is what
 * makes repeated iterations of one test land in one class.
 *
 * The fingerprint is a hash, not an encoding, so distinct shapes can in
 * principle collide; with two independently-mixed 64-bit lanes the
 * probability of any collision among a billion distinct shapes is
 * ~2^-68, far below the simulator's own soft-error rate. The
 * completeness direction (equal shape => equal signature) is exact and
 * pinned by tests/memconsistency/test_signature.cc.
 */

#ifndef MCVERSI_MEMCONSISTENCY_SIGNATURE_HH
#define MCVERSI_MEMCONSISTENCY_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "memconsistency/execwitness.hh"

namespace mcversi::mc {

/** 128-bit fingerprint of one witness's checking equivalence class. */
struct WitnessSignature
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    friend bool operator==(const WitnessSignature &,
                           const WitnessSignature &) = default;
};

/**
 * Non-zero salt identifying a consistency model, for keying verdict
 * memoization per model: a verdict is a function of (shape, model), so
 * signatures computed under different models must never collide by
 * construction. Derived from the model's display name.
 */
std::uint64_t modelSalt(const std::string &model_name);

/**
 * Computes witness signatures; owns the canonical-renaming scratch so
 * steady-state computations are allocation-free. Not thread-safe (one
 * builder per checker, like the cycle-graph scratch).
 */
class SignatureBuilder
{
  public:
    /**
     * Signature of @p ew, which must be finalized and anomaly-free
     * (anomalous witnesses carry record-order-dependent diagnostics and
     * are never memoized).
     */
    WitnessSignature compute(const ExecWitness &ew);

    /**
     * Mix @p salt into every subsequent signature (see modelSalt). The
     * default salt 0 leaves the model-free fingerprint unchanged.
     */
    void setModelSalt(std::uint64_t salt) { salt_ = salt; }

  private:
    std::uint64_t salt_ = 0;
    /** Canonical event ids, kUnassigned until visited. */
    std::vector<std::int32_t> canonEvent_;
    /** Canonical address ids per dense AddrId, kUnassigned until seen. */
    std::vector<std::int32_t> canonAddr_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_SIGNATURE_HH
